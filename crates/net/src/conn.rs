//! Per-connection state machines for the event loop.
//!
//! A [`Connection`] owns one nonblocking socket plus its read and write
//! buffers, its negotiated [`WireMode`], and a [`FaultGate`]. The event
//! loop drives it with three calls:
//!
//! * [`fill`](Connection::fill) — drain the socket into the read
//!   buffer, applying read-side faults chunk by chunk. An injected
//!   stall *defers* the read (the loop parks the connection on the
//!   timer wheel) instead of sleeping.
//! * [`next_request`](Connection::next_request) — extract the next
//!   complete request payload, sniffing the protocol from the first
//!   byte of the connection.
//! * [`flush`](Connection::flush) — push buffered responses out,
//!   applying write-side faults.
//!
//! The [`Sequencer`] keeps pipelined responses in arrival order:
//! requests get a sequence number at parse time, workers complete out
//! of order, and completions are held until every earlier response has
//! been emitted.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Instant;

use mwsj_mapreduce::NetFault;

use crate::fault::FaultGate;
use crate::frame::{self, FrameError, WireMode};

/// Read chunk size. Smaller than a page so injected per-chunk faults
/// (one corruption per read operation) land at a realistic cadence.
const CHUNK: usize = 4096;

/// Outcome of a [`Connection::fill`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The socket would now block; new bytes may have been buffered.
    Open,
    /// The peer half-closed; buffered requests remain servable.
    Eof,
    /// An injected fault defers reading until the given instant.
    Stalled(Instant),
    /// The connection died (reset, error, or injected kill).
    Dead,
}

/// Outcome of a [`Connection::flush`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// The write buffer is fully drained.
    Flushed,
    /// The socket would block with bytes still buffered; the loop
    /// should register write interest.
    Blocked,
    /// An injected fault defers writing until the given instant.
    Stalled(Instant),
    /// The connection died mid-write.
    Dead,
}

/// A protocol violation that warrants a typed `bad_request` response
/// followed by eviction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A request (line or declared frame payload) exceeds the
    /// configured maximum.
    Oversize {
        /// Observed (or declared) request length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A binary frame failed to decode (bad magic between frames, or a
    /// frame cut short by EOF).
    BadFrame(FrameError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversize { len, max } => {
                write!(f, "request of {len} bytes exceeds the maximum of {max}")
            }
            ProtoError::BadFrame(e) => write!(f, "{e}"),
        }
    }
}

/// One nonblocking connection: socket, buffers, protocol mode, faults.
pub struct Connection {
    stream: TcpStream,
    faults: FaultGate,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    mode: Option<WireMode>,
    peer_eof: bool,
    dead: bool,
    /// A deferred read: resume not before the instant, reading at most
    /// the limit (1 for slow-loris trickle), with no new fault draw.
    read_resume: Option<(Instant, usize)>,
    /// A deferred write: resume not before the instant, one attempt
    /// without a new fault draw.
    write_resume: Option<Instant>,
    last_activity: Instant,
}

impl Connection {
    /// Adopts a freshly accepted socket, switching it to nonblocking.
    ///
    /// # Errors
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: TcpStream, faults: FaultGate, now: Instant) -> std::io::Result<Connection> {
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        Ok(Connection {
            stream,
            faults,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            mode: None,
            peer_eof: false,
            dead: false,
            read_resume: None,
            write_resume: None,
            last_activity: now,
        })
    }

    /// The underlying socket (for poller registration).
    #[must_use]
    pub fn socket(&self) -> &TcpStream {
        &self.stream
    }

    /// The negotiated wire mode, once the first byte has arrived.
    #[must_use]
    pub fn mode(&self) -> Option<WireMode> {
        self.mode
    }

    /// Pins the wire mode regardless of the first byte (line-only
    /// policy).
    pub fn force_mode(&mut self, mode: WireMode) {
        self.mode = Some(mode);
    }

    /// Whether the connection has died.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether the peer has half-closed its sending side.
    #[must_use]
    pub fn peer_eof(&self) -> bool {
        self.peer_eof
    }

    /// Instant of the last read progress or response enqueue (idle
    /// eviction input).
    #[must_use]
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Bytes currently buffered inbound (oversize accounting).
    #[must_use]
    pub fn buffered_in(&self) -> usize {
        self.inbuf.len()
    }

    /// Whether unflushed response bytes remain.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        !self.dead && self.outpos < self.outbuf.len()
    }

    /// Whether an injected fault currently defers reading.
    #[must_use]
    pub fn read_stalled(&self) -> bool {
        self.read_resume.is_some()
    }

    /// The earliest instant a deferred read or write becomes due.
    #[must_use]
    pub fn next_resume(&self) -> Option<Instant> {
        match (self.read_resume.map(|(t, _)| t), self.write_resume) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Kills the connection: latches death and shuts the socket down.
    pub fn kill(&mut self) {
        self.dead = true;
        self.stream.shutdown(Shutdown::Both).ok();
    }

    /// One raw read of up to `limit` bytes; returns bytes read, or
    /// `None` on would-block. EOF and errors latch connection state.
    fn read_chunk(&mut self, limit: usize, now: Instant) -> Option<usize> {
        let mut tmp = [0u8; CHUNK];
        let end = limit.min(CHUNK);
        match self.stream.read(&mut tmp[..end]) {
            Ok(0) => {
                self.peer_eof = true;
                Some(0)
            }
            Ok(n) => {
                self.inbuf.extend_from_slice(&tmp[..n]);
                if self.mode.is_none() {
                    self.mode = Some(frame::sniff(self.inbuf[0]));
                }
                self.last_activity = now;
                Some(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                None
            }
            Err(_) => {
                self.dead = true;
                Some(0)
            }
        }
    }

    /// Drains the socket into the read buffer, one fault decision per
    /// chunk, until it would block (or a fault intervenes).
    pub fn fill(&mut self, now: Instant) -> ReadOutcome {
        if self.dead {
            return ReadOutcome::Dead;
        }
        if self.peer_eof {
            return ReadOutcome::Eof;
        }
        // A deferred read resumes first: one chunk, no new fault draw.
        if let Some((when, limit)) = self.read_resume {
            if now < when {
                return ReadOutcome::Stalled(when);
            }
            self.read_resume = None;
            match self.read_chunk(limit, now) {
                Some(_) if self.dead => return ReadOutcome::Dead,
                Some(0) => return ReadOutcome::Eof,
                Some(_) | None => {}
            }
        }
        loop {
            if self.dead {
                return ReadOutcome::Dead;
            }
            if self.peer_eof {
                return ReadOutcome::Eof;
            }
            let (op, fault) = self.faults.next_read();
            match fault {
                NetFault::None => match self.read_chunk(CHUNK, now) {
                    Some(_) if self.dead => return ReadOutcome::Dead,
                    Some(0) => return ReadOutcome::Eof,
                    Some(_) => {}
                    None => return ReadOutcome::Open,
                },
                NetFault::Disconnect => {
                    self.kill();
                    return ReadOutcome::Dead;
                }
                NetFault::Stall(d) => {
                    let until = now + d;
                    self.read_resume = Some((until, CHUNK));
                    return ReadOutcome::Stalled(until);
                }
                NetFault::SlowLoris(d) => {
                    // Trickle: one byte once the delay elapses.
                    let until = now + d;
                    self.read_resume = Some((until, 1));
                    return ReadOutcome::Stalled(until);
                }
                NetFault::TornFrame => {
                    // Deliver a prefix of what arrived, then die.
                    let before = self.inbuf.len();
                    self.read_chunk(CHUNK, now);
                    let got = self.inbuf.len() - before;
                    let keep = self.faults.fault_point(op, got);
                    self.inbuf.truncate(before + keep);
                    self.kill();
                    return ReadOutcome::Dead;
                }
                NetFault::CorruptByte => {
                    // Inbound-only corruption (see the fault module
                    // docs): one flipped byte per chunk.
                    let before = self.inbuf.len();
                    match self.read_chunk(CHUNK, now) {
                        Some(_) if self.dead => return ReadOutcome::Dead,
                        Some(0) => return ReadOutcome::Eof,
                        Some(n) if n > 0 => {
                            let at = before + self.faults.fault_point(op, n);
                            self.inbuf[at] ^= 0x20;
                        }
                        Some(_) => {}
                        None => return ReadOutcome::Open,
                    }
                }
            }
        }
    }

    /// Extracts the next complete request payload, sniffing the
    /// protocol from the connection's first byte.
    ///
    /// Returns `Ok(None)` when more bytes are needed. After EOF a final
    /// unterminated line is still delivered (line mode), while a
    /// truncated binary frame is a typed error.
    ///
    /// # Errors
    /// [`ProtoError`] on oversize requests and malformed frames; the
    /// caller answers with `bad_request` and evicts.
    pub fn next_request(&mut self, max_request: usize) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.mode == Some(WireMode::Binary) {
            // Inter-frame whitespace is legal (negotiating clients tail
            // their probe frame with a newline).
            let skip = frame::leading_whitespace(&self.inbuf);
            if skip > 0 {
                self.inbuf.drain(..skip);
            }
        }
        if self.inbuf.is_empty() {
            return Ok(None);
        }
        let mode = *self.mode.get_or_insert_with(|| frame::sniff(self.inbuf[0]));
        match mode {
            WireMode::Line => {
                if let Some((end, consumed)) = frame::take_line(&self.inbuf) {
                    if consumed > max_request {
                        return Err(ProtoError::Oversize {
                            len: consumed,
                            max: max_request,
                        });
                    }
                    let line = self.inbuf[..end].to_vec();
                    self.inbuf.drain(..consumed);
                    Ok(Some(line))
                } else if self.inbuf.len() > max_request {
                    Err(ProtoError::Oversize {
                        len: self.inbuf.len(),
                        max: max_request,
                    })
                } else if self.peer_eof {
                    // A final unterminated line still gets an answer.
                    Ok(Some(std::mem::take(&mut self.inbuf)))
                } else {
                    Ok(None)
                }
            }
            WireMode::Binary => match frame::decode_frame(&self.inbuf, max_request) {
                Ok((range, consumed)) => {
                    let payload = self.inbuf[range].to_vec();
                    self.inbuf.drain(..consumed);
                    Ok(Some(payload))
                }
                Err(FrameError::Oversize { len, max }) => Err(ProtoError::Oversize { len, max }),
                Err(e @ FrameError::Truncated { .. }) => {
                    if self.peer_eof {
                        Err(ProtoError::BadFrame(e))
                    } else {
                        Ok(None)
                    }
                }
                Err(e @ FrameError::BadMagic { .. }) => Err(ProtoError::BadFrame(e)),
            },
        }
    }

    /// Queues one response payload in the connection's wire mode.
    pub fn enqueue_response(&mut self, payload: &[u8], now: Instant) {
        match self.mode.unwrap_or(WireMode::Line) {
            WireMode::Line => {
                self.outbuf.extend_from_slice(payload);
                self.outbuf.push(b'\n');
            }
            WireMode::Binary => frame::encode_frame(payload, &mut self.outbuf),
        }
        self.last_activity = now;
    }

    /// One raw write attempt; advances the flushed prefix.
    fn write_once(&mut self, now: Instant) -> FlushOutcome {
        match self.stream.write(&self.outbuf[self.outpos..]) {
            Ok(0) => {
                self.kill();
                FlushOutcome::Dead
            }
            Ok(n) => {
                self.outpos += n;
                self.last_activity = now;
                if self.outpos == self.outbuf.len() {
                    self.outbuf.clear();
                    self.outpos = 0;
                    FlushOutcome::Flushed
                } else {
                    FlushOutcome::Blocked
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                FlushOutcome::Blocked
            }
            Err(_) => {
                self.kill();
                FlushOutcome::Dead
            }
        }
    }

    /// Pushes buffered responses out, one fault decision per attempt,
    /// until drained, blocked, or a fault intervenes.
    pub fn flush(&mut self, now: Instant) -> FlushOutcome {
        if self.dead {
            return FlushOutcome::Dead;
        }
        if self.outpos >= self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            return FlushOutcome::Flushed;
        }
        // A deferred write resumes first: one attempt, no new draw.
        if let Some(when) = self.write_resume {
            if now < when {
                return FlushOutcome::Stalled(when);
            }
            self.write_resume = None;
            match self.write_once(now) {
                FlushOutcome::Flushed => return FlushOutcome::Flushed,
                FlushOutcome::Blocked => {}
                other => return other,
            }
        }
        loop {
            if self.outpos >= self.outbuf.len() {
                self.outbuf.clear();
                self.outpos = 0;
                return FlushOutcome::Flushed;
            }
            let (op, fault) = self.faults.next_write();
            match fault {
                // Outbound corruption degenerates to a clean write (see
                // the fault module docs).
                NetFault::None | NetFault::CorruptByte => match self.write_once(now) {
                    FlushOutcome::Flushed => return FlushOutcome::Flushed,
                    FlushOutcome::Blocked if self.outpos < self.outbuf.len() => {
                        return FlushOutcome::Blocked
                    }
                    FlushOutcome::Blocked => {}
                    other => return other,
                },
                NetFault::Disconnect => {
                    self.kill();
                    return FlushOutcome::Dead;
                }
                NetFault::Stall(d) | NetFault::SlowLoris(d) => {
                    let until = now + d;
                    self.write_resume = Some(until);
                    return FlushOutcome::Stalled(until);
                }
                NetFault::TornFrame => {
                    // A prefix reaches the peer, then the connection
                    // drops.
                    let pending = &self.outbuf[self.outpos..];
                    let cut = self.faults.fault_point(op, pending.len());
                    if cut > 0 {
                        let torn = self.outbuf[self.outpos..self.outpos + cut].to_vec();
                        self.stream.write_all(&torn).ok();
                        self.stream.flush().ok();
                    }
                    self.kill();
                    return FlushOutcome::Dead;
                }
            }
        }
    }
}

/// Orders pipelined responses: sequence numbers are assigned at parse
/// time, completions buffer until contiguous, and responses emit in
/// arrival order.
#[derive(Default)]
pub struct Sequencer {
    next_assign: u64,
    next_emit: u64,
    ready: BTreeMap<u64, Vec<u8>>,
}

impl Sequencer {
    /// Creates an empty sequencer.
    #[must_use]
    pub fn new() -> Sequencer {
        Sequencer::default()
    }

    /// Assigns the next sequence number to a freshly parsed request.
    pub fn assign(&mut self) -> u64 {
        let seq = self.next_assign;
        self.next_assign += 1;
        seq
    }

    /// Records a completed response. Returns every payload that is now
    /// emittable, in sequence order.
    pub fn complete(&mut self, seq: u64, payload: Vec<u8>) -> Vec<Vec<u8>> {
        self.ready.insert(seq, payload);
        let mut out = Vec::new();
        while let Some(payload) = self.ready.remove(&self.next_emit) {
            out.push(payload);
            self.next_emit += 1;
        }
        out
    }

    /// Whether every assigned request has been emitted.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.next_assign == self.next_emit
    }

    /// Requests assigned but not yet emitted.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.next_assign - self.next_emit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_MAGIC;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn settle(conn: &mut Connection) {
        // Loopback delivery is fast but not instant under a nonblocking
        // read; poll briefly.
        for _ in 0..200 {
            if conn.fill(Instant::now()) != ReadOutcome::Open || !conn.inbuf.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn sniffs_line_mode_and_extracts_lines() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        a.write_all(b"{\"op\":\"stats\"}\n{\"op\":").expect("write");
        settle(&mut conn);
        assert_eq!(conn.mode(), Some(WireMode::Line));
        let req = conn
            .next_request(1024)
            .expect("no error")
            .expect("one line");
        assert_eq!(req, b"{\"op\":\"stats\"}");
        assert!(conn.next_request(1024).expect("no error").is_none());
    }

    #[test]
    fn sniffs_binary_mode_and_extracts_frames() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        let mut wire = Vec::new();
        frame::encode_frame(b"first", &mut wire);
        frame::encode_frame(b"second", &mut wire);
        a.write_all(&wire).expect("write");
        settle(&mut conn);
        assert_eq!(conn.mode(), Some(WireMode::Binary));
        assert_eq!(conn.next_request(64).expect("ok").expect("frame"), b"first");
        assert_eq!(
            conn.next_request(64).expect("ok").expect("frame"),
            b"second"
        );
        assert!(conn.next_request(64).expect("ok").is_none());
    }

    #[test]
    fn binary_mode_skips_interframe_whitespace() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        let mut wire = Vec::new();
        frame::encode_frame(b"probe", &mut wire);
        wire.push(b'\n');
        frame::encode_frame(b"next", &mut wire);
        a.write_all(&wire).expect("write");
        settle(&mut conn);
        assert_eq!(conn.next_request(64).expect("ok").expect("frame"), b"probe");
        assert_eq!(conn.next_request(64).expect("ok").expect("frame"), b"next");
    }

    #[test]
    fn oversize_line_is_a_typed_error() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        a.write_all(&vec![b'x'; 300]).expect("write");
        settle(&mut conn);
        match conn.next_request(256) {
            Err(ProtoError::Oversize { len, max }) => {
                assert!(len > 256);
                assert_eq!(max, 256);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn oversize_frame_is_a_typed_error() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        let mut wire = vec![FRAME_MAGIC];
        wire.extend_from_slice(&100_000u32.to_le_bytes());
        a.write_all(&wire).expect("write");
        settle(&mut conn);
        assert_eq!(
            conn.next_request(256),
            Err(ProtoError::Oversize {
                len: 100_000,
                max: 256
            })
        );
    }

    #[test]
    fn eof_remnant_line_is_delivered() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        a.write_all(b"{\"op\":\"stats\"}").expect("write");
        a.shutdown(Shutdown::Write).expect("shutdown");
        for _ in 0..200 {
            if conn.fill(Instant::now()) == ReadOutcome::Eof {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(conn.peer_eof());
        let req = conn.next_request(1024).expect("ok").expect("remnant");
        assert_eq!(req, b"{\"op\":\"stats\"}");
    }

    #[test]
    fn eof_mid_frame_is_a_typed_error() {
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), Instant::now()).expect("conn");
        let mut wire = Vec::new();
        frame::encode_frame(b"cut short", &mut wire);
        a.write_all(&wire[..wire.len() - 3]).expect("write");
        a.shutdown(Shutdown::Write).expect("shutdown");
        for _ in 0..200 {
            if conn.fill(Instant::now()) == ReadOutcome::Eof {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        match conn.next_request(1024) {
            Err(ProtoError::BadFrame(FrameError::Truncated { .. })) => {}
            other => panic!("expected truncated frame, got {other:?}"),
        }
    }

    #[test]
    fn responses_are_framed_per_mode() {
        let now = Instant::now();
        // Line mode.
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), now).expect("conn");
        a.write_all(b"{}\n").expect("write");
        settle(&mut conn);
        conn.next_request(64).expect("ok").expect("line");
        conn.enqueue_response(b"{\"ok\":true}", now);
        assert_eq!(conn.flush(now), FlushOutcome::Flushed);
        let mut got = [0u8; 12];
        a.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        a.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"{\"ok\":true}\n");

        // Binary mode.
        let (mut a, b) = pair();
        let mut conn = Connection::new(b, FaultGate::transparent(), now).expect("conn");
        let mut wire = Vec::new();
        frame::encode_frame(b"{}", &mut wire);
        a.write_all(&wire).expect("write");
        settle(&mut conn);
        conn.next_request(64).expect("ok").expect("frame");
        conn.enqueue_response(b"{\"ok\":true}", now);
        assert_eq!(conn.flush(now), FlushOutcome::Flushed);
        let mut got = vec![0u8; frame::FRAME_HEADER + 11];
        a.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        a.read_exact(&mut got).expect("read");
        let (range, _) = frame::decode_frame(&got, 64).expect("frame");
        assert_eq!(&got[range], b"{\"ok\":true}");
    }

    #[test]
    fn injected_stall_defers_instead_of_sleeping() {
        use mwsj_mapreduce::NetFaultPlan;
        let (mut a, b) = pair();
        let plan = NetFaultPlan {
            stall_rate: 1.0,
            ..NetFaultPlan::none()
        };
        let t0 = Instant::now();
        let mut conn = Connection::new(b, FaultGate::new(Some(plan), 0), t0).expect("conn");
        a.write_all(b"{}\n").expect("write");
        std::thread::sleep(Duration::from_millis(5));
        let outcome = conn.fill(Instant::now());
        let ReadOutcome::Stalled(until) = outcome else {
            panic!("expected stall, got {outcome:?}");
        };
        // fill returned without sleeping; the resume instant is ahead.
        assert!(conn.read_stalled());
        assert!(
            conn.next_request(64).expect("ok").is_none(),
            "nothing read yet"
        );
        // After the stall elapses the deferred read resumes; each
        // subsequent chunk draws a fresh stall (rate 1.0), so drive the
        // resume clock until the request surfaces.
        let mut clock = until + Duration::from_millis(1);
        for _ in 0..100 {
            let outcome = conn.fill(clock);
            assert!(matches!(
                outcome,
                ReadOutcome::Open | ReadOutcome::Stalled(_)
            ));
            if let Some(req) = conn.next_request(64).expect("ok") {
                assert_eq!(req, b"{}");
                return;
            }
            if let Some(t) = conn.next_resume() {
                clock = t + Duration::from_millis(1);
            }
        }
        panic!("request never surfaced through stalls");
    }

    #[test]
    fn sequencer_reorders_out_of_order_completions() {
        let mut seq = Sequencer::new();
        let a = seq.assign();
        let b = seq.assign();
        let c = seq.assign();
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(seq.complete(c, b"C".to_vec()).is_empty());
        assert!(seq.complete(b, b"B".to_vec()).is_empty());
        assert_eq!(seq.outstanding(), 3);
        let out = seq.complete(a, b"A".to_vec());
        assert_eq!(out, vec![b"A".to_vec(), b"B".to_vec(), b"C".to_vec()]);
        assert!(seq.drained());
    }

    #[test]
    fn sequencer_streams_in_order_completions_immediately() {
        let mut seq = Sequencer::new();
        for i in 0..8u64 {
            let s = seq.assign();
            assert_eq!(s, i);
            let out = seq.complete(s, vec![i as u8]);
            assert_eq!(out, vec![vec![i as u8]]);
        }
        assert!(seq.drained());
    }
}
