//! Event-loop networking for the mwsj serving tier.
//!
//! The serving tier (PR 6) began as thread-per-connection blocking TCP.
//! This crate supplies the primitives that turn it into a readiness
//! event loop able to hold thousands of connections on a handful of
//! threads:
//!
//! * [`poll`] — level-triggered readiness polling: `epoll` on Linux,
//!   `poll(2)` elsewhere on Unix, with the raw syscalls confined to one
//!   small `#[allow(unsafe_code)]` module each, plus a cross-thread
//!   [`poll::Waker`] built on a loopback socket pair.
//! * [`frame`] — protocol sniffing (first byte decides line-JSON vs
//!   binary) and the length-prefixed binary frame codec with typed,
//!   never-panicking decode errors.
//! * [`conn`] — per-connection state machines (read/write buffering,
//!   protocol negotiation, fault application) and the [`conn::Sequencer`]
//!   that keeps pipelined responses in request order.
//! * [`timer`] — a hashed timer wheel for idle eviction, injected-stall
//!   resumption and slow-loris pacing.
//! * [`fault`] — deterministic network-fault injection: the blocking
//!   [`fault::FaultyStream`] adapter and the event-loop
//!   [`fault::FaultGate`] decider, driven by the same
//!   [`mwsj_mapreduce::NetFaultPlan`] decisions.
//!
//! Everything here is transport-only: no JSON, no query semantics, no
//! engine types — the server crate composes these into its service.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod fault;
pub mod frame;
pub mod poll;
pub mod timer;

pub use conn::{Connection, FlushOutcome, ProtoError, ReadOutcome, Sequencer};
pub use fault::{FaultGate, FaultyStream};
pub use frame::{FrameError, WireMode, FRAME_HEADER, FRAME_MAGIC};
pub use poll::{Event, Interest, Poller, Waker};
pub use timer::TimerWheel;
