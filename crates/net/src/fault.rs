//! Deterministic network-fault injection for the serving tier.
//!
//! Two adapters apply the decisions of a
//! [`mwsj_mapreduce::NetFaultPlan`] — abrupt disconnects,
//! torn frames, flipped bytes, mid-operation stalls and slow-loris
//! reads — to a connection:
//!
//! * [`FaultyStream`] wraps a **blocking** socket and sleeps through
//!   stalls in place (the original thread-per-connection adapter, still
//!   used by blocking clients and tests).
//! * [`FaultGate`] is the **nonblocking** counterpart for the event
//!   loop: it only *decides* — the connection state machine enacts the
//!   decision (deferring a stalled read via the timer wheel instead of
//!   sleeping, tearing its own buffers, latching death).
//!
//! Both draw from the same (connection, operation) id scheme — reads
//! and writes count in separate id spaces — so a pinned seed yields the
//! same fault pattern for the same traffic shape regardless of which
//! adapter carries it. Two deliberate asymmetries keep the injected
//! chaos honest:
//!
//! * **Byte corruption is inbound-only.** A flipped byte in a *request*
//!   exercises the server's parse/validate error paths; a flipped byte
//!   in a *response* would make the server lie to a healthy client,
//!   which no amount of server-side robustness could detect. Survivors
//!   therefore always receive byte-correct responses — the invariant
//!   the chaos suite asserts.
//! * **Decisions are per (connection, operation).** Connection ids come
//!   from the accept sequence and operation ids from per-direction
//!   counters, so a pinned seed yields the same fault pattern for the
//!   same traffic shape, independent of thread scheduling.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mwsj_mapreduce::{NetFault, NetFaultPlan};

/// Read operations draw from a different id space than writes, so the
/// two directions' fault decisions are independent.
const READ_OP_BIT: u64 = 1 << 63;

/// Nonblocking fault decider for one event-loop connection.
///
/// Each read or flush attempt asks for one decision; the returned
/// operation id feeds [`fault_point`](FaultGate::fault_point) when the
/// fault needs a position (torn prefix length, corrupt byte index).
/// With no plan every decision is [`NetFault::None`].
pub struct FaultGate {
    plan: Option<NetFaultPlan>,
    conn: u64,
    reads: u64,
    writes: u64,
}

impl FaultGate {
    /// Creates a gate for connection `conn` (accept sequence number).
    #[must_use]
    pub fn new(plan: Option<NetFaultPlan>, conn: u64) -> FaultGate {
        FaultGate {
            plan,
            conn,
            reads: 0,
            writes: 0,
        }
    }

    /// A gate that never injects anything.
    #[must_use]
    pub fn transparent() -> FaultGate {
        FaultGate::new(None, 0)
    }

    /// Draws the next read-side decision and its operation id.
    pub fn next_read(&mut self) -> (u64, NetFault) {
        let op = READ_OP_BIT | self.reads;
        self.reads += 1;
        (op, self.decide(op))
    }

    /// Draws the next write-side decision and its operation id.
    pub fn next_write(&mut self) -> (u64, NetFault) {
        let op = self.writes;
        self.writes += 1;
        (op, self.decide(op))
    }

    fn decide(&self, op: u64) -> NetFault {
        self.plan
            .as_ref()
            .map_or(NetFault::None, |plan| plan.decide(self.conn, op))
    }

    /// The deterministic byte position for operation `op` within a
    /// buffer of length `len` (0 when no plan is armed).
    #[must_use]
    pub fn fault_point(&self, op: u64, len: usize) -> usize {
        self.plan
            .as_ref()
            .map_or(0, |plan| plan.fault_point(self.conn, op, len))
    }
}

/// Per-connection fault state shared by the read and write halves.
struct ConnFaults {
    plan: Option<NetFaultPlan>,
    conn: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Latched once a disconnect or torn frame fires: every later
    /// operation fails like a reset socket would.
    dead: AtomicBool,
}

/// One direction of a fault-wrapped blocking connection
/// ([`Read`] + [`Write`]).
pub struct FaultyStream {
    stream: TcpStream,
    state: Arc<ConnFaults>,
}

impl FaultyStream {
    /// Wraps a connection, returning independent read and write halves
    /// that share one fault state. With `plan` `None` the wrapper is
    /// transparent.
    ///
    /// # Errors
    /// Propagates the socket clone failure.
    pub fn pair(
        stream: &TcpStream,
        plan: Option<NetFaultPlan>,
        conn: u64,
    ) -> std::io::Result<(FaultyStream, FaultyStream)> {
        let state = Arc::new(ConnFaults {
            plan,
            conn,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        });
        Ok((
            FaultyStream {
                stream: stream.try_clone()?,
                state: Arc::clone(&state),
            },
            FaultyStream {
                stream: stream.try_clone()?,
                state,
            },
        ))
    }

    /// Whether an injected disconnect or torn frame has killed the
    /// connection.
    #[must_use]
    pub fn dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    fn kill(&self) -> std::io::Error {
        self.state.dead.store(true, Ordering::SeqCst);
        self.stream.shutdown(Shutdown::Both).ok();
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected connection fault",
        )
    }

    fn sleep_bounded(d: Duration) {
        std::thread::sleep(d);
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "connection killed by injected fault",
            ));
        }
        let Some(plan) = self.state.plan.clone() else {
            return self.stream.read(buf);
        };
        let op = READ_OP_BIT | self.state.reads.fetch_add(1, Ordering::Relaxed);
        match plan.decide(self.state.conn, op) {
            NetFault::None => self.stream.read(buf),
            NetFault::Disconnect => Err(self.kill()),
            NetFault::Stall(d) => {
                Self::sleep_bounded(d);
                self.stream.read(buf)
            }
            NetFault::SlowLoris(d) => {
                // Trickle: one byte per injected delay.
                Self::sleep_bounded(d);
                let end = buf.len().min(1);
                self.stream.read(&mut buf[..end])
            }
            NetFault::TornFrame => {
                // Deliver a prefix of what arrived, then die.
                let n = self.stream.read(buf)?;
                let keep = plan.fault_point(self.state.conn, op, n);
                self.kill();
                Ok(keep)
            }
            NetFault::CorruptByte => {
                // Inbound-only corruption: the request the server parses
                // differs from what the client sent by one flipped bit
                // pattern — never silently equal, never a different
                // *valid* request that binds cleanly.
                let n = self.stream.read(buf)?;
                if n > 0 {
                    buf[plan.fault_point(self.state.conn, op, n)] ^= 0x20;
                }
                Ok(n)
            }
        }
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "connection killed by injected fault",
            ));
        }
        let Some(plan) = self.state.plan.clone() else {
            return self.stream.write(buf);
        };
        let op = self.state.writes.fetch_add(1, Ordering::Relaxed);
        match plan.decide(self.state.conn, op) {
            // Outbound corruption is deliberately not applied (see the
            // module docs): a corrupt response cannot be defended against
            // server-side, so the injected fault degenerates to a clean
            // write.
            NetFault::None | NetFault::CorruptByte => self.stream.write(buf),
            NetFault::Disconnect => Err(self.kill()),
            NetFault::Stall(d) | NetFault::SlowLoris(d) => {
                Self::sleep_bounded(d);
                self.stream.write(buf)
            }
            NetFault::TornFrame => {
                // A prefix reaches the peer, then the connection drops.
                let cut = plan.fault_point(self.state.conn, op, buf.len());
                if cut > 0 {
                    self.stream.write_all(&buf[..cut]).ok();
                    self.stream.flush().ok();
                }
                Err(self.kill())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// Echo one line over a loopback socket pair through the wrapper.
    fn echo_through(plan: Option<NetFaultPlan>, conn: u64, line: &str) -> std::io::Result<String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hello wrapper\n").unwrap();
            s.shutdown(Shutdown::Write).ok();
            let mut out = String::new();
            s.read_to_string(&mut out).ok();
            out
        });
        let (server, _) = listener.accept().unwrap();
        let (read_half, mut write_half) = FaultyStream::pair(&server, plan, conn)?;
        // Drop the original socket: the halves hold their own clones, and
        // the client's EOF needs every server-side fd closed.
        drop(server);
        let mut reader = BufReader::new(read_half);
        let mut got = String::new();
        reader.read_line(&mut got)?;
        write_half.write_all(line.as_bytes())?;
        write_half.flush()?;
        drop(write_half);
        drop(reader);
        client.join().unwrap();
        Ok(got)
    }

    #[test]
    fn transparent_without_a_plan() {
        let got = echo_through(None, 0, "ok\n").unwrap();
        assert_eq!(got, "hello wrapper\n");
    }

    #[test]
    fn inert_plan_is_transparent() {
        let got = echo_through(Some(NetFaultPlan::none()), 3, "ok\n").unwrap();
        assert_eq!(got, "hello wrapper\n");
    }

    #[test]
    fn full_disconnect_rate_kills_the_first_read() {
        let plan = NetFaultPlan {
            disconnect_rate: 1.0,
            ..NetFaultPlan::none()
        };
        let err = echo_through(Some(plan), 1, "ok\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn corrupt_byte_flips_exactly_one_inbound_byte() {
        let plan = NetFaultPlan {
            seed: 5,
            corrupt_rate: 1.0,
            ..NetFaultPlan::none()
        };
        let got = echo_through(Some(plan), 2, "ok\n").unwrap();
        let want = "hello wrapper\n";
        // Same length, exactly one byte differs, and it differs by the
        // 0x20 flip. (The read may arrive in chunks; each chunk gets one
        // flip, so allow >= 1.)
        assert_eq!(got.len(), want.len());
        let diffs = got
            .bytes()
            .zip(want.bytes())
            .filter(|(a, b)| a != b)
            .collect::<Vec<_>>();
        assert!(!diffs.is_empty(), "corruption must have fired");
        for (a, b) in diffs {
            assert_eq!(a ^ b, 0x20);
        }
    }

    #[test]
    fn decisions_are_deterministic_per_connection() {
        let plan = NetFaultPlan::chaos(11, 0.3);
        for conn in 0..4u64 {
            let a: Vec<NetFault> = (0..32).map(|op| plan.decide(conn, op)).collect();
            let b: Vec<NetFault> = (0..32).map(|op| plan.decide(conn, op)).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn gate_and_stream_draw_identical_decisions() {
        let plan = NetFaultPlan::chaos(77, 0.5);
        let mut gate = FaultGate::new(Some(plan.clone()), 9);
        for i in 0..16u64 {
            let (op, fault) = gate.next_read();
            assert_eq!(op, READ_OP_BIT | i);
            assert_eq!(fault, plan.decide(9, op));
        }
        for i in 0..16u64 {
            let (op, fault) = gate.next_write();
            assert_eq!(op, i);
            assert_eq!(fault, plan.decide(9, op));
        }
    }

    #[test]
    fn transparent_gate_never_faults() {
        let mut gate = FaultGate::transparent();
        for _ in 0..64 {
            assert_eq!(gate.next_read().1, NetFault::None);
            assert_eq!(gate.next_write().1, NetFault::None);
        }
        assert_eq!(gate.fault_point(0, 100), 0);
    }
}
