//! A hashed timer wheel for connection deadlines.
//!
//! The serving tier schedules thousands of cheap, coarse timers — idle
//! eviction, stall resumption, slow-loris pacing — where a `BinaryHeap`
//! of exact deadlines would be overkill. The wheel buckets deadlines
//! into fixed-granularity slots around a ring; inserting and firing are
//! O(1) amortized, and each [`advance`](TimerWheel::advance) walks only
//! the slots the clock actually crossed.
//!
//! Deadlines beyond one revolution carry a `rounds` counter and ride
//! the ring multiple times. Fires are *hints*, not authority: a timer
//! may fire up to one granularity early or late, so handlers re-check
//! the real condition (actual idle time, actual stall deadline) against
//! the clock. Cancellation is implicit — fired tokens that no longer
//! name a live connection (or whose condition re-check fails) are
//! ignored, which keeps the wheel free of per-entry bookkeeping.

use std::time::{Duration, Instant};

struct Entry {
    token: u64,
    rounds: u64,
}

/// A hashed timer wheel over `u64` tokens.
pub struct TimerWheel {
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    /// Ticks fully processed since `epoch`.
    last_tick: u64,
    epoch: Instant,
}

impl TimerWheel {
    /// Creates a wheel with `slots` buckets of `granularity` each; `now`
    /// anchors the wheel's clock.
    ///
    /// # Panics
    /// If `granularity` is zero or `slots < 2`.
    #[must_use]
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(granularity > Duration::ZERO, "zero timer granularity");
        assert!(slots >= 2, "timer wheel needs at least 2 slots");
        TimerWheel {
            granularity,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            last_tick: 0,
            epoch: now,
        }
    }

    /// Schedules `token` to fire roughly `after` from now (rounded up
    /// to the wheel granularity, minimum one tick).
    pub fn schedule(&mut self, token: u64, after: Duration) {
        let gran = self.granularity.as_nanos().max(1);
        let ticks = u64::try_from(after.as_nanos().div_ceil(gran))
            .unwrap_or(u64::MAX)
            .max(1);
        let len = self.slots.len() as u64;
        let slot = ((self.last_tick + ticks) % len) as usize;
        self.slots[slot].push(Entry {
            token,
            rounds: (ticks - 1) / len,
        });
    }

    /// Advances the wheel to `now`, pushing every due token onto `due`
    /// (which is not cleared). Tokens fire at most once per schedule.
    pub fn advance(&mut self, now: Instant, due: &mut Vec<u64>) {
        let gran = self.granularity.as_nanos().max(1);
        let target =
            u64::try_from(now.duration_since(self.epoch).as_nanos() / gran).unwrap_or(u64::MAX);
        let len = self.slots.len() as u64;
        while self.last_tick < target {
            self.last_tick += 1;
            let slot = (self.last_tick % len) as usize;
            self.slots[slot].retain_mut(|entry| {
                if entry.rounds == 0 {
                    due.push(entry.token);
                    false
                } else {
                    entry.rounds -= 1;
                    true
                }
            });
        }
    }

    /// The next instant by which [`advance`](TimerWheel::advance) should
    /// run again, or `None` when nothing is scheduled.
    #[must_use]
    pub fn next_due(&self) -> Option<Instant> {
        if self.slots.iter().all(Vec::is_empty) {
            return None;
        }
        // Coarse: one tick ahead. The event loop's poll timeout is on
        // the same order as the granularity, so a precise scan of the
        // ring buys nothing.
        Some(self.epoch + self.granularity * u32::try_from(self.last_tick + 1).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRAN: Duration = Duration::from_millis(10);

    #[test]
    fn fires_after_the_scheduled_delay() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(GRAN, 8, t0);
        wheel.schedule(1, Duration::from_millis(25));
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), &mut due);
        assert!(due.is_empty(), "not due yet");
        wheel.advance(t0 + Duration::from_millis(40), &mut due);
        assert_eq!(due, vec![1]);
        due.clear();
        wheel.advance(t0 + Duration::from_millis(200), &mut due);
        assert!(due.is_empty(), "fires only once");
    }

    #[test]
    fn deadlines_beyond_one_revolution_ride_the_rounds_counter() {
        let t0 = Instant::now();
        // 8 slots x 10ms = one 80ms revolution; 250ms needs 3 laps.
        let mut wheel = TimerWheel::new(GRAN, 8, t0);
        wheel.schedule(7, Duration::from_millis(250));
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(240), &mut due);
        assert!(due.is_empty(), "still riding rounds");
        wheel.advance(t0 + Duration::from_millis(260), &mut due);
        assert_eq!(due, vec![7]);
    }

    #[test]
    fn many_tokens_in_one_slot_all_fire() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(GRAN, 4, t0);
        for token in 0..32 {
            wheel.schedule(token, Duration::from_millis(15));
        }
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(30), &mut due);
        due.sort_unstable();
        assert_eq!(due, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_rounds_up_to_one_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(GRAN, 4, t0);
        wheel.schedule(3, Duration::ZERO);
        let mut due = Vec::new();
        wheel.advance(t0 + GRAN, &mut due);
        assert_eq!(due, vec![3]);
    }

    #[test]
    fn next_due_tracks_pending_work() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(GRAN, 4, t0);
        assert!(wheel.next_due().is_none());
        wheel.schedule(1, Duration::from_millis(5));
        assert!(wheel.next_due().is_some());
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(50), &mut due);
        assert_eq!(due, vec![1]);
        assert!(wheel.next_due().is_none());
    }
}
