//! Wire framing: first-byte protocol sniffing and the length-prefixed
//! binary frame codec.
//!
//! The service speaks two interchangeable framings for the same JSON
//! payloads:
//!
//! * **Line mode** — one request per `\n`-terminated line, the original
//!   protocol. Any connection whose first byte is not the frame magic
//!   (in particular `{`, the start of every JSON request) stays in line
//!   mode, so old clients keep working unchanged.
//! * **Binary mode** — each message is `0xB1`, a little-endian `u32`
//!   payload length, then the payload bytes. No scanning for
//!   terminators, and payloads may contain newlines.
//!
//! A connection's mode is decided once, by its first byte, and both
//! directions use it. Binary mode skips ASCII whitespace *between*
//! frames so a negotiating client may tail its first frame with a
//! newline (which makes the probe a complete — if garbled — line for a
//! line-only server, yielding a fast typed error instead of a hang).

use std::fmt;

/// First byte of every binary frame. Distinct from `{` (0x7B) so the
/// first byte of a connection identifies the protocol.
pub const FRAME_MAGIC: u8 = 0xB1;

/// Bytes of frame overhead before the payload: magic + `u32` length.
pub const FRAME_HEADER: usize = 5;

/// The framing a connection speaks, decided by its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMode {
    /// Newline-terminated JSON lines (the original protocol).
    Line,
    /// Length-prefixed binary frames.
    Binary,
}

/// Classifies a connection from its first byte: [`FRAME_MAGIC`] opens a
/// binary connection, anything else stays on line-JSON.
#[must_use]
pub fn sniff(first_byte: u8) -> WireMode {
    if first_byte == FRAME_MAGIC {
        WireMode::Binary
    } else {
        WireMode::Line
    }
}

/// A typed decode failure. `Truncated` doubles as the streaming "need
/// more bytes" signal; it only becomes an error when the peer can send
/// no more (EOF mid-frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer holds `have` bytes but the frame needs `need`.
    Truncated {
        /// Bytes currently buffered.
        have: usize,
        /// Bytes the complete frame requires.
        need: usize,
    },
    /// The declared payload length exceeds the configured maximum.
    Oversize {
        /// Declared payload length.
        len: usize,
        /// Configured maximum payload length.
        max: usize,
    },
    /// The first byte is not [`FRAME_MAGIC`].
    BadMagic {
        /// The byte found where the magic was expected.
        byte: u8,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::Oversize { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the maximum of {max}"
                )
            }
            FrameError::BadMagic { byte } => {
                write!(f, "bad frame magic byte 0x{byte:02x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one binary frame carrying `payload` to `out`.
///
/// # Panics
/// If the payload exceeds `u32::MAX` bytes (the length prefix could not
/// represent it).
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    out.reserve(FRAME_HEADER + payload.len());
    out.push(FRAME_MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the frame at the front of `buf`.
///
/// On success returns `(payload_range, consumed)`: the payload's byte
/// range within `buf` and the total bytes the frame occupies. Never
/// panics, whatever the bytes.
pub fn decode_frame(
    buf: &[u8],
    max_payload: usize,
) -> Result<(std::ops::Range<usize>, usize), FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Truncated {
            have: 0,
            need: FRAME_HEADER,
        });
    }
    if buf[0] != FRAME_MAGIC {
        return Err(FrameError::BadMagic { byte: buf[0] });
    }
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::Truncated {
            have: buf.len(),
            need: FRAME_HEADER,
        });
    }
    let len_bytes: [u8; 4] = buf[1..FRAME_HEADER].try_into().expect("4-byte slice");
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_payload {
        return Err(FrameError::Oversize {
            len,
            max: max_payload,
        });
    }
    let total = FRAME_HEADER + len;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            have: buf.len(),
            need: total,
        });
    }
    Ok((FRAME_HEADER..total, total))
}

/// Finds the first complete line in `buf`.
///
/// Returns `(line_end, consumed)` — the line's content length
/// (excluding the `\n`) and the bytes to drain (including it) — or
/// `None` when no newline has arrived yet.
#[must_use]
pub fn take_line(buf: &[u8]) -> Option<(usize, usize)> {
    buf.iter()
        .position(|&b| b == b'\n')
        .map(|pos| (pos, pos + 1))
}

/// Counts leading ASCII whitespace (space, tab, CR, LF) — binary mode
/// skips these between frames.
#[must_use]
pub fn leading_whitespace(buf: &[u8]) -> usize {
    buf.iter()
        .take_while(|&&b| b == b' ' || b == b'\t' || b == b'\r' || b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sniff_classifies_magic_and_json() {
        assert_eq!(sniff(FRAME_MAGIC), WireMode::Binary);
        assert_eq!(sniff(b'{'), WireMode::Line);
        assert_eq!(sniff(b'\n'), WireMode::Line);
    }

    #[test]
    fn empty_buffer_needs_a_header() {
        assert_eq!(
            decode_frame(&[], 1024),
            Err(FrameError::Truncated {
                have: 0,
                need: FRAME_HEADER
            })
        );
    }

    #[test]
    fn oversize_is_reported_before_waiting_for_payload() {
        // Header declares 1 MiB against a 64-byte cap: the error must
        // surface from the header alone, without buffering the payload.
        let mut buf = vec![FRAME_MAGIC];
        buf.extend_from_slice(&(1u32 << 20).to_le_bytes());
        assert_eq!(
            decode_frame(&buf, 64),
            Err(FrameError::Oversize {
                len: 1 << 20,
                max: 64
            })
        );
    }

    #[test]
    fn take_line_splits_at_the_first_newline() {
        assert_eq!(take_line(b"ab\ncd\n"), Some((2, 3)));
        assert_eq!(take_line(b"abc"), None);
        assert_eq!(take_line(b"\n"), Some((0, 1)));
    }

    #[test]
    fn leading_whitespace_counts_blank_bytes() {
        assert_eq!(leading_whitespace(b" \r\n\tx"), 4);
        assert_eq!(leading_whitespace(b"x "), 0);
        assert_eq!(leading_whitespace(b""), 0);
    }

    // The offline proptest shim has no inclusive-range strategies, so
    // byte values are drawn from `0u16..256` and narrowed.
    fn byte() -> impl Strategy<Value = u8> {
        (0u16..256).prop_map(|v| v as u8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(byte(), 0..96),
            max in 0usize..4096,
        ) {
            let _ = decode_frame(&bytes, max);
        }

        #[test]
        fn round_trip_recovers_the_payload(
            payload in proptest::collection::vec(byte(), 0..256),
            trailing in proptest::collection::vec(byte(), 0..16),
        ) {
            let mut wire = Vec::new();
            encode_frame(&payload, &mut wire);
            let frame_len = wire.len();
            wire.extend_from_slice(&trailing);
            let (range, consumed) = decode_frame(&wire, payload.len())
                .expect("encoded frame decodes");
            prop_assert_eq!(consumed, frame_len);
            prop_assert_eq!(&wire[range], payload.as_slice());
        }

        #[test]
        fn any_proper_prefix_is_truncated(
            payload in proptest::collection::vec(byte(), 0..128),
            cut in 0usize..1000,
        ) {
            let mut wire = Vec::new();
            encode_frame(&payload, &mut wire);
            let cut = cut % wire.len();
            let err = decode_frame(&wire[..cut], payload.len()).expect_err("prefix is incomplete");
            match err {
                FrameError::Truncated { have, need } => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(need > cut);
                    prop_assert!(need <= wire.len());
                }
                other => prop_assert!(false, "expected Truncated, got {:?}", other),
            }
        }

        #[test]
        fn declared_length_beyond_the_cap_is_oversize(
            extra in 1usize..4096,
            max in 0usize..4096,
        ) {
            let len = max + extra;
            let mut wire = vec![FRAME_MAGIC];
            wire.extend_from_slice(&(len as u32).to_le_bytes());
            prop_assert_eq!(
                decode_frame(&wire, max),
                Err(FrameError::Oversize { len, max })
            );
        }

        #[test]
        fn non_magic_first_byte_is_rejected(first in byte()) {
            // No prop_assume in the shim: remap the one excluded value.
            let first = if first == FRAME_MAGIC { b'{' } else { first };
            let wire = [first, 0, 0, 0, 0];
            prop_assert_eq!(
                decode_frame(&wire, 1024),
                Err(FrameError::BadMagic { byte: first })
            );
        }
    }
}
