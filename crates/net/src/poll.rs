//! Readiness polling behind a safe API.
//!
//! On Linux this is `epoll`; on other Unix platforms it falls back to
//! `poll(2)`. Either way the raw syscalls live in one small
//! `#[allow(unsafe_code)]` module (the same isolation pattern as the
//! signal shim in `mwsj-server`) and nothing unsafe leaks into the
//! event loop: callers register descriptors with a `u64` token and get
//! back plain [`Event`] values.
//!
//! The poller is **level-triggered**: a descriptor with unread input
//! (or writable space while write interest is registered) is reported
//! on every [`Poller::wait`] until the condition clears. The event loop
//! therefore deregisters interest it cannot act on (e.g. read interest
//! while an injected stall defers the read) instead of spinning.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Readiness interest for a registered descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Report when the descriptor has bytes to read (or a pending
    /// accept, or EOF).
    pub readable: bool,
    /// Report when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the initial registration for every
    /// connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event returned by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; a read will observe
    /// EOF or the error.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    //! The only `unsafe` in the crate: four raw `epoll`/`close`
    //! declarations plus thin wrappers that keep every pointer's
    //! lifetime inside the call.

    use std::io;

    // Kernel ABI quirk: on x86-64 `struct epoll_event` is packed to 12
    // bytes; everywhere else it has natural (16-byte) layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn create() -> io::Result<i32> {
        // SAFETY: no pointers cross the boundary; the return value is a
        // fresh descriptor or -1 with errno set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live local for the duration of the call and
        // the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `buf` is valid for `buf.len()` entries for the whole
        // call; the kernel writes at most that many events.
        let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: the poller owns `fd` exclusively and calls this once,
        // from `Drop`.
        unsafe {
            close(fd);
        }
    }
}

/// Level-triggered readiness poller over `epoll`.
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates a poller (one `epoll` instance).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::create()?,
        })
    }

    fn events_of(interest: Interest) -> u32 {
        let mut ev = sys::EPOLLRDHUP;
        if interest.readable {
            ev |= sys::EPOLLIN;
        }
        if interest.writable {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    /// Registers a descriptor under `token`.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            Self::events_of(interest),
            token,
        )
    }

    /// Changes the interest set of a registered descriptor.
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            Self::events_of(interest),
            token,
        )
    }

    /// Removes a descriptor from the poller.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Waits up to `timeout` for readiness, appending to `events`
    /// (cleared first). Returns the number of events delivered.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
        events.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 128];
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = match sys::wait(self.epfd, &mut buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let token = ev.data;
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)]
mod sys {
    //! `poll(2)` fallback for non-Linux Unix platforms.

    use std::io;
    use std::os::raw::c_ulong;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: i32) -> i32;
    }

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is valid for `fds.len()` entries for the whole
        // call; the kernel only writes `revents` within that range.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// Level-triggered readiness poller over `poll(2)` (non-Linux Unix).
#[cfg(all(unix, not(target_os = "linux")))]
pub struct Poller {
    registered: std::sync::Mutex<Vec<(RawFd, u64, Interest)>>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            registered: std::sync::Mutex::new(Vec::new()),
        })
    }

    /// Registers a descriptor under `token`.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.registered
            .lock()
            .expect("poller registry poisoned")
            .push((fd.as_raw_fd(), token, interest));
        Ok(())
    }

    /// Changes the interest set of a registered descriptor.
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        let raw = fd.as_raw_fd();
        let mut reg = self.registered.lock().expect("poller registry poisoned");
        for slot in reg.iter_mut() {
            if slot.0 == raw {
                slot.1 = token;
                slot.2 = interest;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    /// Removes a descriptor from the poller.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        let raw = fd.as_raw_fd();
        self.registered
            .lock()
            .expect("poller registry poisoned")
            .retain(|slot| slot.0 != raw);
        Ok(())
    }

    /// Waits up to `timeout` for readiness, appending to `events`
    /// (cleared first). Returns the number of events delivered.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
        events.clear();
        let reg = self
            .registered
            .lock()
            .expect("poller registry poisoned")
            .clone();
        let mut fds: Vec<sys::PollFd> = reg
            .iter()
            .map(|&(fd, _, interest)| sys::PollFd {
                fd,
                events: if interest.readable { sys::POLLIN } else { 0 }
                    | if interest.writable { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = match sys::wait(&mut fds, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for (slot, pfd) in reg.iter().zip(&fds) {
            if pfd.revents != 0 {
                events.push(Event {
                    token: slot.1,
                    readable: pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: pfd.revents & sys::POLLOUT != 0,
                    hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
        }
        Ok(n)
    }
}

/// Wakes a [`Poller::wait`] call from another thread.
///
/// Built on a loopback TCP pair so it needs no extra syscalls anywhere:
/// `wake` writes one byte to the write end, the poller reports the read
/// end readable, and the loop drains it. Cloneable and cheap to share
/// across worker threads.
#[derive(Clone)]
pub struct Waker {
    tx: std::sync::Arc<std::net::TcpStream>,
}

impl Waker {
    /// Signals the event loop; best-effort (a full pipe already means
    /// the loop has a pending wake).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The readable end of a [`Waker`] pair; register it with the poller
/// and [`drain`](WakeRx::drain) it when it fires.
pub struct WakeRx {
    rx: std::net::TcpStream,
}

impl WakeRx {
    /// Consumes all pending wake bytes.
    pub fn drain(&mut self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = self.rx.read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

impl AsRawFd for WakeRx {
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

/// Creates a connected waker pair (loopback TCP, both ends nonblocking).
pub fn waker() -> io::Result<(Waker, WakeRx)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let tx = std::net::TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nodelay(true)?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: std::sync::Arc::new(tx),
        },
        WakeRx { rx },
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(&b, 7, Interest::READ).expect("register");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "no bytes yet");

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn write_interest_toggles_with_reregister() {
        let (_a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(&b, 1, Interest::READ).expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.iter().all(|e| !e.writable));

        poller
            .reregister(
                &b,
                1,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .expect("reregister");
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn hangup_is_reported_as_readable_eof() {
        let (a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(&b, 3, Interest::READ).expect("register");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].readable || events[0].hangup);
        let mut buf = [0u8; 8];
        let mut b = &b;
        assert_eq!(b.read(&mut buf).expect("read"), 0, "EOF after hangup");
    }

    #[test]
    fn waker_fires_from_another_thread() {
        let poller = Poller::new().expect("poller");
        let (wk, mut rx) = waker().expect("waker");
        poller.register(&rx, 9, Interest::READ).expect("register");
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            wk.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(2000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        rx.drain();
        handle.join().expect("join");
    }

    #[test]
    fn deregister_stops_events() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(&b, 5, Interest::READ).expect("register");
        poller.deregister(&b).expect("deregister");
        a.write_all(b"x").expect("write");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(50))
            .expect("wait");
        assert!(events.is_empty());
    }
}
