use mwsj_geom::{Coord, Rect};
use serde::{Deserialize, Serialize};

use crate::graph::JoinGraph;
use crate::parser::{self, ParseError};

/// Index of a relation *position* in a query (0-based).
///
/// Positions, not datasets: a self-join such as the paper's
/// `Q2s = R Ov R and R Ov R` uses three positions all bound to the same
/// dataset at execution time. No triple may join a position with itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelationId(pub u16);

impl RelationId {
    /// The position index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A spatial join predicate.
///
/// `Overlap` and `Range` are the paper's predicates (§1.2). `Contains` is
/// the containment query its §10 lists as future work: it implies overlap,
/// so every routing and marking argument of the framework carries over
/// with the overlap crossing conditions, while the exact (directional)
/// test is evaluated locally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `Overlap(r1, r2)`: the closed rectangles share at least one point.
    Overlap,
    /// `Range(r1, r2, d)`: the rectangles are within distance `d`.
    Range(Coord),
    /// `Contains(r1, r2)`: `r1` contains `r2` (closed). **Directional** —
    /// the triple's left relation is the container.
    Contains,
}

impl Predicate {
    /// Evaluates the predicate on two rectangles, `a` being the triple's
    /// **left** side (the container for `Contains`).
    #[must_use]
    pub fn eval(&self, a: &Rect, b: &Rect) -> bool {
        match *self {
            Predicate::Overlap => a.overlaps(b),
            Predicate::Range(d) => a.within_distance(b, d),
            Predicate::Contains => a.contains_rect(b),
        }
    }

    /// Evaluates with explicit orientation: when `flipped`, `a` is the
    /// triple's *right* side.
    #[must_use]
    pub fn eval_oriented(&self, a: &Rect, b: &Rect, flipped: bool) -> bool {
        if flipped {
            self.eval(b, a)
        } else {
            self.eval(a, b)
        }
    }

    /// Whether argument order matters (`Contains` is the only asymmetric
    /// predicate).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        !matches!(self, Predicate::Contains)
    }

    /// The predicate's distance parameter — the join-graph edge weight: 0
    /// for overlap, `d` for `Range(d)`. An overlap predicate is exactly a
    /// range predicate with distance 0 (§9).
    #[must_use]
    pub fn distance(&self) -> Coord {
        match *self {
            Predicate::Overlap | Predicate::Contains => 0.0,
            Predicate::Range(d) => d,
        }
    }

    /// Whether this is a range predicate with `d > 0`.
    #[must_use]
    pub fn is_range(&self) -> bool {
        matches!(self, Predicate::Range(d) if *d > 0.0)
    }
}

/// One join condition: `(P, R_left, R_right)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Triple {
    /// The spatial predicate.
    pub predicate: Predicate,
    /// Left relation position.
    pub left: RelationId,
    /// Right relation position.
    pub right: RelationId,
}

/// Errors from query construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no join condition.
    NoTriples,
    /// A triple joins a relation position with itself.
    SelfJoin(String),
    /// A range distance is negative or not finite.
    BadDistance(String),
    /// The join graph is not connected — the C-Rep framework (and any
    /// single-round join) requires a connected query (§7.4 footnote: the
    /// crossing conditions reason over paths in the join graph).
    Disconnected,
    /// More relation positions than supported (the subset enumeration in the
    /// round-1 marking is exponential in the number of relations).
    TooManyRelations(usize),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NoTriples => write!(f, "query has no join conditions"),
            QueryError::SelfJoin(name) => {
                write!(f, "relation position {name} is joined with itself; bind the same dataset to two positions instead")
            }
            QueryError::BadDistance(name) => {
                write!(
                    f,
                    "range distance for {name} must be finite and non-negative"
                )
            }
            QueryError::Disconnected => write!(f, "join graph must be connected"),
            QueryError::TooManyRelations(n) => {
                write!(
                    f,
                    "{n} relation positions exceed the supported maximum of 16"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Maximum number of relation positions in one query. The round-1 marking
/// procedure enumerates connected relation subsets (2^m worst case); the
/// paper's queries use 3-4 relations.
pub const MAX_RELATIONS: usize = 16;

/// A validated multi-way spatial join query: a conjunction of [`Triple`]s
/// over relation positions (§1.2, equation (1)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    names: Vec<String>,
    triples: Vec<Triple>,
}

impl Query {
    /// Starts building a query.
    #[must_use]
    pub fn builder() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Parses the textual form, e.g.
    /// `"R1 overlaps R2 and R2 within 100 of R3"`.
    ///
    /// Relation positions are created in order of first appearance. See
    /// [`crate::ParseError`] for the grammar.
    pub fn parse(text: &str) -> Result<Query, ParseError> {
        parser::parse(text)
    }

    pub(crate) fn from_parts(names: Vec<String>, triples: Vec<Triple>) -> Result<Self, QueryError> {
        if triples.is_empty() {
            return Err(QueryError::NoTriples);
        }
        if names.len() > MAX_RELATIONS {
            return Err(QueryError::TooManyRelations(names.len()));
        }
        for t in &triples {
            if t.left == t.right {
                return Err(QueryError::SelfJoin(names[t.left.index()].clone()));
            }
            let d = t.predicate.distance();
            if !(d.is_finite() && d >= 0.0) {
                return Err(QueryError::BadDistance(names[t.left.index()].clone()));
            }
        }
        let q = Self { names, triples };
        if !q.graph().is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(q)
    }

    /// Number of relation positions (the cardinality of the paper's `R`).
    #[must_use]
    pub fn num_relations(&self) -> usize {
        self.names.len()
    }

    /// The join conditions.
    #[must_use]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Name of a relation position.
    #[must_use]
    pub fn name(&self, r: RelationId) -> &str {
        &self.names[r.index()]
    }

    /// All relation position ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> {
        (0..self.names.len() as u16).map(RelationId)
    }

    /// Builds the join graph view of the query.
    #[must_use]
    pub fn graph(&self) -> JoinGraph {
        JoinGraph::new(self)
    }

    /// The largest range distance in the query (0 for pure overlap queries)
    /// — the paper's upper bound `d` on all range parameters (§8).
    #[must_use]
    pub fn max_range_distance(&self) -> Coord {
        self.triples
            .iter()
            .map(|t| t.predicate.distance())
            .fold(0.0, Coord::max)
    }

    /// Whether every predicate is an overlap (a *multi-way overlap join*).
    #[must_use]
    pub fn is_overlap_only(&self) -> bool {
        self.triples.iter().all(|t| !t.predicate.is_range())
    }

    /// The *consistency* check of §7.3 on a partial assignment of rectangles
    /// to relation positions: every triple whose **both** positions are
    /// bound must be satisfied. A full assignment that is consistent is an
    /// output tuple.
    #[must_use]
    pub fn is_consistent(&self, assignment: &[Option<Rect>]) -> bool {
        debug_assert_eq!(assignment.len(), self.num_relations());
        self.triples.iter().all(|t| {
            match (assignment[t.left.index()], assignment[t.right.index()]) {
                (Some(a), Some(b)) => t.predicate.eval(&a, &b),
                _ => true,
            }
        })
    }

    /// The canonical form of this query: a semantically identical query
    /// with a unique spelling, so that trivially-different phrasings of
    /// the same join compare (and hash, via their `Display` rendering) equal.
    /// Result caches key on the canonical text.
    ///
    /// Canonicalization (idempotent):
    /// 1. symmetric conjuncts are oriented with their endpoint names in
    ///    lexicographic order (`Contains` is directional and kept as-is),
    /// 2. conjuncts are sorted by (predicate kind, distance bit pattern,
    ///    left name, right name),
    /// 3. duplicate conjuncts are dropped (conjunction is idempotent),
    /// 4. relation positions are renumbered by first appearance in the
    ///    sorted conjunct list.
    #[must_use]
    pub fn canonical(&self) -> Query {
        fn rank(p: &Predicate) -> u8 {
            match p {
                Predicate::Overlap => 0,
                Predicate::Range(_) => 1,
                Predicate::Contains => 2,
            }
        }
        let mut conds: Vec<(Predicate, &str, &str)> = self
            .triples
            .iter()
            .map(|t| {
                let (l, r) = (self.name(t.left), self.name(t.right));
                if t.predicate.is_symmetric() && l > r {
                    (t.predicate, r, l)
                } else {
                    (t.predicate, l, r)
                }
            })
            .collect();
        conds.sort_by(|a, b| {
            rank(&a.0)
                .cmp(&rank(&b.0))
                .then_with(|| a.0.distance().to_bits().cmp(&b.0.distance().to_bits()))
                .then_with(|| a.1.cmp(b.1))
                .then_with(|| a.2.cmp(b.2))
        });
        conds.dedup_by(|a, b| {
            rank(&a.0) == rank(&b.0)
                && a.0.distance().to_bits() == b.0.distance().to_bits()
                && a.1 == b.1
                && a.2 == b.2
        });
        let mut builder = Query::builder();
        for (p, l, r) in conds {
            builder = builder.condition(p, l, r);
        }
        builder
            .build()
            .expect("canonicalization preserves query validity")
    }

    /// Checks a **full** tuple (one rectangle per position) against all
    /// join conditions.
    #[must_use]
    pub fn satisfied_by(&self, tuple: &[Rect]) -> bool {
        debug_assert_eq!(tuple.len(), self.num_relations());
        self.triples.iter().all(|t| {
            t.predicate
                .eval(&tuple[t.left.index()], &tuple[t.right.index()])
        })
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, t) in self.triples.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            match t.predicate {
                Predicate::Overlap => write!(
                    f,
                    "{} overlaps {}",
                    self.names[t.left.index()],
                    self.names[t.right.index()]
                )?,
                Predicate::Range(d) => write!(
                    f,
                    "{} within {} of {}",
                    self.names[t.left.index()],
                    d,
                    self.names[t.right.index()]
                )?,
                Predicate::Contains => write!(
                    f,
                    "{} contains {}",
                    self.names[t.left.index()],
                    self.names[t.right.index()]
                )?,
            }
        }
        Ok(())
    }
}

/// Incremental query construction. Relation positions are registered on
/// first use; [`QueryBuilder::build`] validates the result.
///
/// ```
/// use mwsj_query::{Predicate, Query};
/// let q = Query::builder()
///     .overlap("R1", "R2")
///     .range("R2", "R3", 100.0)
///     .build()
///     .unwrap();
/// assert_eq!(q.num_relations(), 3);
/// assert_eq!(q.triples().len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct QueryBuilder {
    names: Vec<String>,
    triples: Vec<Triple>,
}

impl QueryBuilder {
    /// Registers (or looks up) a relation position by name.
    fn relation(&mut self, name: &str) -> RelationId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            RelationId(pos as u16)
        } else {
            self.names.push(name.to_string());
            RelationId((self.names.len() - 1) as u16)
        }
    }

    /// Registers a relation position without adding a condition — useful
    /// to pin position numbering before adding conditions in an arbitrary
    /// order (positions are otherwise assigned by first appearance).
    #[must_use]
    pub fn declare(mut self, name: &str) -> Self {
        let _ = self.relation(name);
        self
    }

    /// Adds an overlap condition between two relation positions.
    #[must_use]
    pub fn overlap(mut self, left: &str, right: &str) -> Self {
        let (l, r) = (self.relation(left), self.relation(right));
        self.triples.push(Triple {
            predicate: Predicate::Overlap,
            left: l,
            right: r,
        });
        self
    }

    /// Adds a range condition (`Ra(d)`) between two relation positions.
    #[must_use]
    pub fn range(mut self, left: &str, right: &str, d: Coord) -> Self {
        let (l, r) = (self.relation(left), self.relation(right));
        self.triples.push(Triple {
            predicate: Predicate::Range(d),
            left: l,
            right: r,
        });
        self
    }

    /// Adds a containment condition: `left` contains `right`.
    #[must_use]
    pub fn contains(mut self, left: &str, right: &str) -> Self {
        let (l, r) = (self.relation(left), self.relation(right));
        self.triples.push(Triple {
            predicate: Predicate::Contains,
            left: l,
            right: r,
        });
        self
    }

    /// Adds a condition with an explicit predicate.
    #[must_use]
    pub fn condition(mut self, predicate: Predicate, left: &str, right: &str) -> Self {
        let (l, r) = (self.relation(left), self.relation(right));
        self.triples.push(Triple {
            predicate,
            left: l,
            right: r,
        });
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<Query, QueryError> {
        Query::from_parts(self.names, self.triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Query {
        // The paper's Q2: R1 overlaps R2 and R2 overlaps R3.
        Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_positions_in_order() {
        let q = chain3();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.name(RelationId(0)), "R1");
        assert_eq!(q.name(RelationId(2)), "R3");
        assert_eq!(q.triples()[0].left, RelationId(0));
        assert_eq!(q.triples()[1].right, RelationId(2));
    }

    #[test]
    fn self_join_rejected() {
        let err = Query::builder().overlap("R", "R").build().unwrap_err();
        assert!(matches!(err, QueryError::SelfJoin(_)));
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(Query::builder().build().unwrap_err(), QueryError::NoTriples);
    }

    #[test]
    fn disconnected_query_rejected() {
        let err = Query::builder()
            .overlap("R1", "R2")
            .overlap("R3", "R4")
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::Disconnected);
    }

    #[test]
    fn negative_distance_rejected() {
        let err = Query::builder()
            .range("R1", "R2", -1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::BadDistance(_)));
    }

    #[test]
    fn predicate_eval() {
        let a = Rect::new(0.0, 10.0, 5.0, 5.0);
        let b = Rect::new(8.0, 10.0, 5.0, 5.0);
        assert!(!Predicate::Overlap.eval(&a, &b));
        assert!(Predicate::Range(3.0).eval(&a, &b));
        assert!(!Predicate::Range(2.0).eval(&a, &b));
        assert_eq!(Predicate::Overlap.distance(), 0.0);
        assert_eq!(Predicate::Range(3.0).distance(), 3.0);
    }

    #[test]
    fn overlap_equals_range_zero() {
        // §9: an overlap predicate is a range predicate with d = 0.
        let a = Rect::new(0.0, 10.0, 5.0, 5.0);
        for bx in [3.0, 5.0, 5.5] {
            let b = Rect::new(bx, 10.0, 5.0, 5.0);
            assert_eq!(
                Predicate::Overlap.eval(&a, &b),
                Predicate::Range(0.0).eval(&a, &b)
            );
        }
    }

    #[test]
    fn consistency_ignores_unbound_positions() {
        let q = chain3();
        let a = Rect::new(0.0, 10.0, 5.0, 5.0);
        let far = Rect::new(100.0, 10.0, 5.0, 5.0);
        // Only R1 bound: trivially consistent.
        assert!(q.is_consistent(&[Some(a), None, None]));
        // R1 and R3 bound but not adjacent in the chain: consistent even
        // though they are far apart (no condition R1-R3 in Q2, cf. §7.3).
        assert!(q.is_consistent(&[Some(a), None, Some(far)]));
        // R1 and R2 bound and disjoint: inconsistent.
        assert!(!q.is_consistent(&[Some(a), Some(far), None]));
    }

    #[test]
    fn satisfied_by_full_tuple() {
        let q = chain3();
        let r1 = Rect::new(0.0, 10.0, 5.0, 5.0);
        let r2 = Rect::new(4.0, 10.0, 5.0, 5.0);
        let r3 = Rect::new(8.0, 10.0, 5.0, 5.0);
        assert!(q.satisfied_by(&[r1, r2, r3]));
        // r1 and r3 need not overlap (chain, not clique).
        assert!(!r1.overlaps(&r3));
        // Swap so the chain breaks.
        assert!(!q.satisfied_by(&[r1, r3, r2]));
    }

    #[test]
    fn max_range_distance_and_overlap_only() {
        let q = chain3();
        assert!(q.is_overlap_only());
        assert_eq!(q.max_range_distance(), 0.0);
        let q4 = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 200.0)
            .build()
            .unwrap();
        assert!(!q4.is_overlap_only());
        assert_eq!(q4.max_range_distance(), 200.0);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let q = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 100.0)
            .build()
            .unwrap();
        let text = q.to_string();
        assert_eq!(text, "R1 overlaps R2 and R2 within 100 of R3");
        assert_eq!(Query::parse(&text).unwrap(), q);
    }

    #[test]
    fn canonical_is_idempotent() {
        let queries = [
            chain3(),
            Query::builder()
                .range("B", "A", 50.0)
                .contains("B", "C")
                .build()
                .unwrap(),
            Query::builder()
                .overlap("R2", "R1")
                .overlap("R3", "R2")
                .overlap("R1", "R3")
                .build()
                .unwrap(),
        ];
        for q in queries {
            let c = q.canonical();
            assert_eq!(c.canonical(), c, "canonical must be a fixed point");
        }
    }

    #[test]
    fn spelling_variants_share_one_canonical_form() {
        // Same join, three spellings: flipped symmetric endpoints and
        // reordered conjuncts.
        let a = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 100.0)
            .build()
            .unwrap();
        let b = Query::builder()
            .range("R3", "R2", 100.0)
            .overlap("R2", "R1")
            .build()
            .unwrap();
        let c = Query::builder()
            .declare("R3")
            .declare("R2")
            .overlap("R2", "R1")
            .range("R2", "R3", 100.0)
            .build()
            .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), c.canonical());
        assert_eq!(a.canonical().to_string(), b.canonical().to_string());
        // Distinct queries stay distinct.
        let other = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 101.0)
            .build()
            .unwrap();
        assert_ne!(a.canonical(), other.canonical());
    }

    #[test]
    fn canonical_preserves_contains_direction() {
        // Contains is directional: `B contains A` must NOT reorient to
        // `A contains B` even though "A" < "B".
        let q = Query::builder()
            .contains("B", "A")
            .overlap("A", "B")
            .build()
            .unwrap();
        let c = q.canonical();
        let t = c
            .triples()
            .iter()
            .find(|t| t.predicate == Predicate::Contains)
            .unwrap();
        assert_eq!(c.name(t.left), "B");
        assert_eq!(c.name(t.right), "A");
        // ...while its symmetric conjunct was reoriented.
        let o = c
            .triples()
            .iter()
            .find(|t| t.predicate == Predicate::Overlap)
            .unwrap();
        assert_eq!(c.name(o.left), "A");
    }

    #[test]
    fn canonical_dedups_repeated_conjuncts() {
        let q = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R1")
            .overlap("R1", "R2")
            .range("R2", "R3", 5.0)
            .build()
            .unwrap();
        let c = q.canonical();
        assert_eq!(c.triples().len(), 2);
        assert_eq!(c.canonical(), c);
    }

    #[test]
    fn too_many_relations_rejected() {
        let mut b = Query::builder();
        for i in 0..17 {
            b = b.overlap(&format!("R{i}"), &format!("R{}", i + 1));
        }
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::TooManyRelations(_)
        ));
    }
}
