//! Grid-histogram statistics for selectivity estimation.
//!
//! The sampling planner in `mwsj-core` estimates predicate selectivities by
//! evaluating pairs of sampled rectangles. This module provides the
//! classic database alternative: an equi-width 2D histogram summarizing
//! where a relation's rectangles live and how large they are, from which
//! overlap- and range-join selectivities can be estimated in O(buckets²)
//! without touching the data again — the kind of statistics a catalog
//! would keep per relation.
//!
//! The estimator uses the standard uniformity-within-bucket model: two
//! rectangles from buckets `p` and `q` join with probability
//! `min(1, (l̄_p + l̄_q + 2d) (b̄_p + b̄_q + 2d) / (w_p w_q …))` collapsed to
//! the closed form below, where `l̄`/`b̄` are per-bucket mean side lengths.
//! Accuracy is validated in the tests against exact join counts.

use mwsj_geom::{Coord, Rect};

/// An equi-width 2D grid histogram over a rectangle relation: per bucket,
/// the number of rectangles *starting* there and their mean side lengths.
#[derive(Debug, Clone)]
pub struct GridHistogram {
    x0: Coord,
    y0: Coord,
    bucket_w: Coord,
    bucket_h: Coord,
    cols: usize,
    rows: usize,
    counts: Vec<u64>,
    mean_l: Vec<Coord>,
    mean_b: Vec<Coord>,
    total: u64,
}

impl GridHistogram {
    /// Builds a `cols x rows` histogram of `data` over the space
    /// `[x_range] x [y_range]`.
    ///
    /// # Panics
    /// Panics if the ranges are empty or a dimension is zero.
    #[must_use]
    pub fn build(
        data: &[Rect],
        x_range: (Coord, Coord),
        y_range: (Coord, Coord),
        cols: usize,
        rows: usize,
    ) -> Self {
        assert!(cols > 0 && rows > 0);
        assert!(x_range.1 > x_range.0 && y_range.1 > y_range.0);
        let bucket_w = (x_range.1 - x_range.0) / cols as Coord;
        let bucket_h = (y_range.1 - y_range.0) / rows as Coord;
        let mut counts = vec![0u64; cols * rows];
        let mut sum_l = vec![0.0; cols * rows];
        let mut sum_b = vec![0.0; cols * rows];
        for r in data {
            let cx = (((r.x() - x_range.0) / bucket_w) as usize).min(cols - 1);
            let cy = (((r.y() - y_range.0) / bucket_h) as usize).min(rows - 1);
            let idx = cy * cols + cx;
            counts[idx] += 1;
            sum_l[idx] += r.l();
            sum_b[idx] += r.b();
        }
        let mean_l = counts
            .iter()
            .zip(&sum_l)
            .map(|(&c, &s)| if c == 0 { 0.0 } else { s / c as Coord })
            .collect();
        let mean_b = counts
            .iter()
            .zip(&sum_b)
            .map(|(&c, &s)| if c == 0 { 0.0 } else { s / c as Coord })
            .collect();
        Self {
            x0: x_range.0,
            y0: y_range.0,
            bucket_w,
            bucket_h,
            cols,
            rows,
            counts,
            mean_l,
            mean_b,
            total: data.len() as u64,
        }
    }

    /// Total number of summarized rectangles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Histogram resolution as `(cols, rows)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Estimated number of pairs `(a, b)`, `a` from `self`'s relation and
    /// `b` from `other`'s, within distance `d` (`d = 0` estimates the
    /// overlap join).
    ///
    /// Start points are modeled as uniform within each bucket; a pair from
    /// buckets `(p, q)` joins when the start-point difference falls in a
    /// `(l̄ sum + 2d) x (b̄ sum + 2d)` window, intersected with the buckets'
    /// start-point difference distribution (a box convolution, evaluated
    /// per axis).
    #[must_use]
    pub fn estimate_join(&self, other: &GridHistogram, d: Coord) -> f64 {
        let mut expected = 0.0f64;
        for (pi, &pc) in self.counts.iter().enumerate() {
            if pc == 0 {
                continue;
            }
            let (px, py) = self.bucket_origin(pi);
            for (qi, &qc) in other.counts.iter().enumerate() {
                if qc == 0 {
                    continue;
                }
                let (qx, qy) = other.bucket_origin(qi);
                // Along an axis, intervals [A, A + l_p] and [B, B + l_q]
                // come within d iff A - B ∈ [-(l_p + d), l_q + d] — an
                // asymmetric window of width l_p + l_q + 2d.
                let p_x = axis_overlap_probability(
                    px,
                    self.bucket_w,
                    qx,
                    other.bucket_w,
                    self.mean_l[pi] + d,
                    other.mean_l[qi] + d,
                );
                let p_y = axis_overlap_probability(
                    py,
                    self.bucket_h,
                    qy,
                    other.bucket_h,
                    self.mean_b[pi] + d,
                    other.mean_b[qi] + d,
                );
                expected += pc as f64 * qc as f64 * p_x * p_y;
            }
        }
        expected
    }

    fn bucket_origin(&self, idx: usize) -> (Coord, Coord) {
        let cx = idx % self.cols;
        let cy = idx / self.cols;
        (
            self.x0 + cx as Coord * self.bucket_w,
            self.y0 + cy as Coord * self.bucket_h,
        )
    }
}

/// Probability that two independent uniform start coordinates —
/// `A ~ U[a0, a0 + aw]`, `B ~ U[b0, b0 + bw]` — satisfy
/// `A - B ∈ [-left_win, right_win]` (the axis join condition with the
/// per-side windows folded in by the caller). Computed as the area of a
/// diagonal band inside the `aw x bw` joint-distribution rectangle.
fn axis_overlap_probability(
    a0: Coord,
    aw: Coord,
    b0: Coord,
    bw: Coord,
    left_win: Coord,
    right_win: Coord,
) -> f64 {
    // (a0 + x) - (b0 + y) in [-left_win, right_win]
    //   <=> x - y in [b0 - a0 - left_win, b0 - a0 + right_win].
    let lo = b0 - a0 - left_win;
    let hi = b0 - a0 + right_win;
    if aw <= 0.0 || bw <= 0.0 {
        // Degenerate buckets: a point model.
        return f64::from(u8::from(lo <= 0.0 && 0.0 <= hi));
    }
    band_area(aw, bw, lo, hi) / (aw * bw)
}

/// Area of `{ (x, y) in [0, aw] x [0, bw] : lo <= x - y <= hi }`.
fn band_area(aw: Coord, bw: Coord, lo: Coord, hi: Coord) -> f64 {
    // Integrate over x: the y-range is [x - hi, x - lo] ∩ [0, bw].
    // Piecewise-linear; integrate numerically-exactly via the antiderivative
    // of clamped linear functions using a few breakpoints.
    let f = |x: Coord| -> Coord {
        let y_lo = (x - hi).max(0.0);
        let y_hi = (x - lo).min(bw);
        (y_hi - y_lo).max(0.0)
    };
    // Breakpoints where the piecewise expression changes slope.
    let mut pts = vec![0.0, aw, hi, lo, hi + bw, lo + bw];
    pts.retain(|&p| (0.0..=aw).contains(&p));
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    pts.dedup();
    let mut area = 0.0;
    for w in pts.windows(2) {
        let (x1, x2) = (w[0], w[1]);
        // f is linear on [x1, x2]; trapezoid rule is exact.
        area += (f(x1) + f(x2)) / 2.0 * (x2 - x1);
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const EXTENT: f64 = 1_000.0;

    fn relation(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..EXTENT - side);
                let y = rng.random_range(side..EXTENT);
                Rect::new(
                    x,
                    y,
                    rng.random_range(0.0..side),
                    rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    fn exact_join_count(a: &[Rect], b: &[Rect], d: f64) -> u64 {
        let mut n = 0;
        for ra in a {
            for rb in b {
                if ra.within_distance(rb, d) {
                    n += 1;
                }
            }
        }
        n
    }

    fn check_estimate(a: &[Rect], b: &[Rect], d: f64, tolerance: f64) {
        let ha = GridHistogram::build(a, (0.0, EXTENT), (0.0, EXTENT), 16, 16);
        let hb = GridHistogram::build(b, (0.0, EXTENT), (0.0, EXTENT), 16, 16);
        let est = ha.estimate_join(&hb, d);
        let exact = exact_join_count(a, b, d) as f64;
        assert!(
            est >= exact * (1.0 - tolerance) && est <= exact * (1.0 + tolerance),
            "estimate {est:.0} vs exact {exact:.0} (d = {d})"
        );
    }

    #[test]
    fn overlap_estimate_within_30_percent_on_uniform_data() {
        let a = relation(2_000, 1, 40.0);
        let b = relation(2_000, 2, 40.0);
        check_estimate(&a, &b, 0.0, 0.30);
    }

    #[test]
    fn range_estimate_within_30_percent() {
        let a = relation(1_500, 3, 25.0);
        let b = relation(1_500, 4, 25.0);
        for d in [20.0, 60.0] {
            check_estimate(&a, &b, d, 0.30);
        }
    }

    #[test]
    fn estimate_tracks_skew() {
        // `a` concentrated in the top-left corner, `b` in the bottom-right:
        // virtually no joins. A pure-uniform model (which ignores *where*
        // the rectangles are) would predict thousands; the histogram sees
        // the disjoint placement. (Note that concentrating only ONE side
        // would not reduce the expected pair count — the uniform side
        // sweeps the whole space — so both must be skewed.)
        let mut rng = StdRng::seed_from_u64(5);
        let corner = |rng: &mut StdRng, x0: f64, y0: f64| -> Vec<Rect> {
            (0..1_000)
                .map(|_| {
                    Rect::new(
                        rng.random_range(x0..x0 + 80.0),
                        rng.random_range(y0 + 20.0..y0 + 100.0),
                        20.0,
                        20.0,
                    )
                })
                .collect()
        };
        let a = corner(&mut rng, 0.0, 900.0 - 20.0); // top-left
        let b = corner(&mut rng, 900.0, 0.0); // bottom-right
        let ha = GridHistogram::build(&a, (0.0, EXTENT), (0.0, EXTENT), 16, 16);
        let hb = GridHistogram::build(&b, (0.0, EXTENT), (0.0, EXTENT), 16, 16);
        let est = ha.estimate_join(&hb, 0.0);
        assert_eq!(exact_join_count(&a, &b, 0.0), 0);
        // A location-blind uniform model would predict ~1,600 pairs.
        let uniform_guess = 1_000.0 * 1_000.0 * ((20.0 + 20.0) / EXTENT).powi(2);
        assert!(uniform_guess > 1_000.0);
        assert!(est < uniform_guess / 100.0, "estimate {est:.1}");
    }

    #[test]
    fn empty_and_disjoint() {
        let a: Vec<Rect> = Vec::new();
        let b = relation(100, 7, 20.0);
        let ha = GridHistogram::build(&a, (0.0, EXTENT), (0.0, EXTENT), 8, 8);
        let hb = GridHistogram::build(&b, (0.0, EXTENT), (0.0, EXTENT), 8, 8);
        assert_eq!(ha.estimate_join(&hb, 0.0), 0.0);
        assert_eq!(ha.total(), 0);
        assert_eq!(hb.total(), 100);
    }

    #[test]
    fn band_area_known_cases() {
        // Whole square inside the band.
        assert!((band_area(1.0, 1.0, -2.0, 2.0) - 1.0).abs() < 1e-12);
        // Empty band.
        assert_eq!(band_area(1.0, 1.0, 5.0, 6.0), 0.0);
        // Diagonal band |x - y| <= 0.5 in the unit square: 1 - 2*(0.5*0.5*0.5) = 0.75.
        assert!((band_area(1.0, 1.0, -0.5, 0.5) - 0.75).abs() < 1e-12);
    }
}
