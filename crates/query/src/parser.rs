//! A small textual query language.
//!
//! Grammar (case-insensitive keywords, `and`-separated clauses):
//!
//! ```text
//! query   := clause ( "and" clause )*
//! clause  := ident ("overlaps" | "ov") ident
//!          | ident "contains" ident
//!          | ident "within" number "of" ident
//!          | ident "ra" "(" number ")" ident
//! ```
//!
//! Examples:
//!
//! ```
//! use mwsj_query::Query;
//! let q = Query::parse("city overlaps forest and forest within 10 of river").unwrap();
//! assert_eq!(q.num_relations(), 3);
//! let q2 = Query::parse("R1 ov R2 and R2 ra(100) R3").unwrap();
//! assert_eq!(q2.max_range_distance(), 100.0);
//! ```
//!
//! Identical names denote the **same** relation position; a self-join over
//! one dataset must use distinct position names (`"R_a overlaps R_b"`) with
//! the same dataset bound to both positions at execution time.

use crate::query::{Query, QueryBuilder, QueryError};

/// Errors from [`Query::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Input ended while a clause was still expected.
    UnexpectedEnd,
    /// An unexpected token was found.
    UnexpectedToken {
        /// The offending token.
        token: String,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// A number failed to parse.
    BadNumber(String),
    /// The parsed query failed semantic validation.
    Invalid(QueryError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of query"),
            ParseError::UnexpectedToken { token, expected } => {
                write!(f, "unexpected token `{token}`, expected {expected}")
            }
            ParseError::BadNumber(t) => write!(f, "`{t}` is not a valid distance"),
            ParseError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Tokenizes on whitespace, treating parentheses as separate tokens so
/// `ra(100)` splits into `ra ( 100 )`.
fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_whitespace() || ch == '(' || ch == ')' {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if ch == '(' || ch == ')' {
                tokens.push(ch.to_string());
            }
        } else {
            cur.push(ch);
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

pub(crate) fn parse(text: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(text);
    let mut pos = 0;
    let mut builder = QueryBuilder::default();

    let next = |pos: &mut usize| -> Result<&str, ParseError> {
        let t = tokens.get(*pos).ok_or(ParseError::UnexpectedEnd)?;
        *pos += 1;
        Ok(t.as_str())
    };

    loop {
        let left = next(&mut pos)?.to_string();
        let op = next(&mut pos)?.to_ascii_lowercase();
        match op.as_str() {
            "overlaps" | "ov" => {
                let right = next(&mut pos)?;
                builder = builder.overlap(&left, right);
            }
            "contains" => {
                let right = next(&mut pos)?;
                builder = builder.contains(&left, right);
            }
            "within" => {
                let num = next(&mut pos)?;
                let d: f64 = num
                    .parse()
                    .map_err(|_| ParseError::BadNumber(num.to_string()))?;
                let of = next(&mut pos)?;
                if !of.eq_ignore_ascii_case("of") {
                    return Err(ParseError::UnexpectedToken {
                        token: of.to_string(),
                        expected: "`of`",
                    });
                }
                let right = next(&mut pos)?;
                builder = builder.range(&left, right, d);
            }
            "ra" => {
                let open = next(&mut pos)?;
                if open != "(" {
                    return Err(ParseError::UnexpectedToken {
                        token: open.to_string(),
                        expected: "`(`",
                    });
                }
                let num = next(&mut pos)?;
                let d: f64 = num
                    .parse()
                    .map_err(|_| ParseError::BadNumber(num.to_string()))?;
                let close = next(&mut pos)?;
                if close != ")" {
                    return Err(ParseError::UnexpectedToken {
                        token: close.to_string(),
                        expected: "`)`",
                    });
                }
                let right = next(&mut pos)?;
                builder = builder.range(&left, right, d);
            }
            other => {
                return Err(ParseError::UnexpectedToken {
                    token: other.to_string(),
                    expected: "`overlaps`, `ov`, `contains`, `within` or `ra`",
                })
            }
        }
        match tokens.get(pos) {
            None => break,
            Some(t) if t.eq_ignore_ascii_case("and") => {
                pos += 1;
            }
            Some(t) => {
                return Err(ParseError::UnexpectedToken {
                    token: t.clone(),
                    expected: "`and` or end of query",
                })
            }
        }
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    #[test]
    fn parses_overlap_chain() {
        let q = parse("R1 overlaps R2 and R2 overlaps R3").unwrap();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.triples().len(), 2);
        assert!(q.is_overlap_only());
    }

    #[test]
    fn parses_short_forms() {
        let q = parse("a ov b and b ra(12.5) c").unwrap();
        assert_eq!(q.triples()[1].predicate, Predicate::Range(12.5));
    }

    #[test]
    fn parses_within_form() {
        let q = parse("a within 100 of b").unwrap();
        assert_eq!(q.triples()[0].predicate, Predicate::Range(100.0));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse("a OVERLAPS b AND b WITHIN 3 OF c").unwrap();
        assert_eq!(q.triples().len(), 2);
    }

    #[test]
    fn relation_names_case_sensitive() {
        let q = parse("a overlaps A and A overlaps b").unwrap();
        assert_eq!(q.num_relations(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse("a overlaps b c").unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedToken { .. }));
    }

    #[test]
    fn rejects_bad_number() {
        assert!(matches!(
            parse("a within x of b").unwrap_err(),
            ParseError::BadNumber(_)
        ));
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert_eq!(parse("a overlaps").unwrap_err(), ParseError::UnexpectedEnd);
        assert_eq!(
            parse("a within 3 of").unwrap_err(),
            ParseError::UnexpectedEnd
        );
    }

    #[test]
    fn rejects_semantic_errors() {
        assert!(matches!(
            parse("a overlaps a").unwrap_err(),
            ParseError::Invalid(QueryError::SelfJoin(_))
        ));
        assert!(matches!(
            parse("a ov b and c ov d").unwrap_err(),
            ParseError::Invalid(QueryError::Disconnected)
        ));
    }

    #[test]
    fn rejects_missing_of() {
        assert!(matches!(
            parse("a within 3 from b").unwrap_err(),
            ParseError::UnexpectedToken { .. }
        ));
    }
}
