//! The multi-way spatial join query model (§1.2 of the paper).
//!
//! A query is a conjunction of triples `(P_i, R_{i,1}, R_{i,2})` where each
//! `P_i` is an [`Predicate::Overlap`] or [`Predicate::Range`] predicate and
//! the `R`s are relations. The query is visualized as a *join graph*: one
//! vertex per relation, one edge per triple, edge weight 0 for overlap and
//! `d` for `Range(d)`.
//!
//! This crate provides:
//!
//! * [`Predicate`] — the two spatial predicates, evaluated on rectangles;
//! * [`Query`] / [`QueryBuilder`] — validated query construction;
//! * [`Query::parse`] — a small textual form
//!   (`"R1 overlaps R2 and R2 within 100 of R3"`);
//! * [`JoinGraph`] — adjacency, connectivity, traversal orders;
//! * [`JoinPlan`] — precompiled bind orders (per-depth probe and verify
//!   edges) for the reducer-local matcher;
//! * [`replication_bounds`] — the *C-Rep-L* per-relation replication
//!   distances (§7.9, §8) for arbitrary connected query graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod graph;
pub mod histogram;
mod parser;
mod plan;
mod query;

pub use bounds::replication_bounds;
pub use graph::JoinGraph;
pub use histogram::GridHistogram;
pub use parser::ParseError;
pub use plan::{JoinPlan, PlanStep, ProbeEdge, VerifyEdge};
pub use query::{Predicate, Query, QueryBuilder, QueryError, RelationId, Triple};
