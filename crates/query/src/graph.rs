use crate::query::{Predicate, Query, RelationId};

/// The join-graph view of a query (§1.2): one vertex per relation position,
/// one edge per triple; edge weight 0 for overlap, `d` for `Range(d)`.
///
/// The C-Rep marking procedure and the local multi-way matcher both traverse
/// this graph; [`JoinGraph::connected_subsets`] enumerates the candidate
/// relation-sets of the round-1 conditions (§7.4, see `mwsj-local`).
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// `adj[i]` lists `(neighbor, predicate, forward)` for every triple
    /// touching `i`; `forward` is true when `i` is the triple's left side
    /// (the orientation `Contains` needs).
    adj: Vec<Vec<(RelationId, Predicate, bool)>>,
}

impl JoinGraph {
    /// Builds the graph from a query.
    #[must_use]
    pub fn new(query: &Query) -> Self {
        let mut adj = vec![Vec::new(); query.num_relations()];
        for t in query.triples() {
            adj[t.left.index()].push((t.right, t.predicate, true));
            adj[t.right.index()].push((t.left, t.predicate, false));
        }
        Self { adj }
    }

    /// Number of vertices (relation positions).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// The `(neighbor, predicate, forward)` entries incident to `r`
    /// (`forward` = `r` is the triple's left side). A pair of relations may
    /// be joined by several predicates; each appears here.
    #[must_use]
    pub fn neighbors(&self, r: RelationId) -> &[(RelationId, Predicate, bool)] {
        &self.adj[r.index()]
    }

    /// Whether the join graph is connected (required by the framework).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.adj.len();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _, _) in &self.adj[v] {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w.index());
                }
            }
        }
        count == n
    }

    /// A breadth-first traversal order starting from `start`; every vertex
    /// after the first is adjacent to some earlier vertex. The local
    /// multi-way matcher binds relations in such an order so each extension
    /// can be driven by an index probe from an already-bound neighbor.
    #[must_use]
    pub fn bfs_order(&self, start: RelationId) -> Vec<RelationId> {
        let n = self.adj.len();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        seen[start.index()] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(w, _, _) in &self.adj[v.index()] {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        order
    }

    /// Enumerates every **connected, non-empty** subset of vertices as a
    /// bitmask (bit `i` = relation position `i`). Proper subsets only when
    /// `proper_only` — the round-1 marking needs `S ⊊ R` (condition C3 rules
    /// out the full set, §7.4).
    ///
    /// Exponential in the number of relations, which the query model caps at
    /// 16; the paper's queries have 3-4.
    #[must_use]
    pub fn connected_subsets(&self, proper_only: bool) -> Vec<u32> {
        let n = self.adj.len();
        debug_assert!(n <= 16);
        let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
        let mut out = Vec::new();
        for mask in 1u32..=full {
            if proper_only && mask == full {
                continue;
            }
            if self.is_connected_subset(mask) {
                out.push(mask);
            }
        }
        out
    }

    /// Whether the vertices in `mask` induce a connected subgraph.
    #[must_use]
    pub fn is_connected_subset(&self, mask: u32) -> bool {
        if mask == 0 {
            return false;
        }
        let start = mask.trailing_zeros() as usize;
        let mut seen: u32 = 1 << start;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &(w, _, _) in &self.adj[v] {
                let bit = 1u32 << w.index();
                if mask & bit != 0 && seen & bit == 0 {
                    seen |= bit;
                    stack.push(w.index());
                }
            }
        }
        seen == mask
    }

    /// Whether any edge leaves the subset `mask` (condition C3: at least one
    /// pair `(R1 ∈ S, R2 ∉ S)` with a join condition).
    #[must_use]
    pub fn has_outside_edge(&self, mask: u32) -> bool {
        for v in 0..self.adj.len() {
            if mask & (1 << v) == 0 {
                continue;
            }
            for &(w, _, _) in &self.adj[v] {
                if mask & (1 << w.index()) == 0 {
                    return true;
                }
            }
        }
        false
    }

    /// The predicates on edges from vertex `r` to vertices **outside**
    /// `mask` — the per-member crossing obligations of condition C2.
    #[must_use]
    pub fn outside_edges(&self, r: RelationId, mask: u32) -> Vec<Predicate> {
        self.adj[r.index()]
            .iter()
            .filter(|(w, _, _)| mask & (1 << w.index()) == 0)
            .map(|&(_, p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;

    fn chain4() -> Query {
        // The paper's Q1: R1 Ov R2 and R2 Ov R3 and R3 Ov R4.
        Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .overlap("R3", "R4")
            .build()
            .unwrap()
    }

    #[test]
    fn adjacency_of_chain() {
        let g = chain4().graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.neighbors(RelationId(0)).len(), 1);
        assert_eq!(g.neighbors(RelationId(1)).len(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn bfs_order_extends_by_adjacency() {
        let g = chain4().graph();
        let order = g.bfs_order(RelationId(2));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], RelationId(2));
        // Every later vertex is adjacent to an earlier one.
        for (i, &v) in order.iter().enumerate().skip(1) {
            assert!(order[..i]
                .iter()
                .any(|&u| g.neighbors(v).iter().any(|&(w, _, _)| w == u)));
        }
    }

    #[test]
    fn connected_subsets_of_chain4() {
        let g = chain4().graph();
        let subs = g.connected_subsets(true);
        // Connected subsets of a path 0-1-2-3 are contiguous runs:
        // 4 singletons + 3 pairs + 2 triples = 9 proper subsets.
        assert_eq!(subs.len(), 9);
        assert!(subs.contains(&0b0001));
        assert!(subs.contains(&0b0110));
        assert!(subs.contains(&0b0111));
        assert!(!subs.contains(&0b0101)); // {0, 2} is disconnected
        assert!(!subs.contains(&0b1111)); // full set excluded
                                          // Including the full set:
        assert_eq!(g.connected_subsets(false).len(), 10);
    }

    #[test]
    fn outside_edges_of_subsets() {
        let g = chain4().graph();
        // S = {1, 2}: vertex 1 has an outside edge to 0, vertex 2 to 3.
        let mask = 0b0110;
        assert!(g.has_outside_edge(mask));
        assert_eq!(g.outside_edges(RelationId(1), mask).len(), 1);
        assert_eq!(g.outside_edges(RelationId(2), mask).len(), 1);
        // The full set has no outside edge.
        assert!(!g.has_outside_edge(0b1111));
        // S = {0}: one outside edge (to 1).
        assert_eq!(g.outside_edges(RelationId(0), 0b0001).len(), 1);
    }

    #[test]
    fn star_query_subsets() {
        // Star: R2 in the middle (R1-R2, R2-R3), as in Q2.
        let q = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        let g = q.graph();
        let subs = g.connected_subsets(true);
        // Singletons {0},{1},{2}; pairs {0,1},{1,2}. {0,2} disconnected.
        assert_eq!(subs.len(), 5);
    }

    #[test]
    fn parallel_edges_are_kept() {
        // Hybrid pair: overlap AND range between the same two relations.
        let q = Query::builder()
            .overlap("A", "B")
            .range("A", "B", 10.0)
            .build()
            .unwrap();
        let g = q.graph();
        assert_eq!(g.neighbors(RelationId(0)).len(), 2);
        let preds = g.outside_edges(RelationId(0), 0b01);
        assert_eq!(preds.len(), 2);
    }
}
