use mwsj_geom::Coord;

use crate::query::{Query, RelationId};

/// Computes the *C-Rep-L* per-relation replication distance bounds
/// (§7.9 for overlap chains, §8 for range chains, generalized to arbitrary
/// connected query graphs as the paper's footnote 3 sketches).
///
/// A rectangle `u` of relation `R_i` marked for replication only needs to
/// reach reducers that might hold a rectangle `v` of some relation `R_j`
/// joining (transitively) with `u`. Walking a path `R_i = V_0, V_1, …,
/// V_h = R_j` in the join graph, consecutive rectangles are at most
/// `d_edge` apart and each intermediate rectangle spans at most `d_max`
/// (its diagonal), so
///
/// ```text
/// dist(u, v) ≤ Σ_path d_edge + (h - 1) · d_max .
/// ```
///
/// The replication bound for `R_i` is the maximum over all `R_j` of the
/// minimum such path cost — a weighted eccentricity, computed here with
/// Dijkstra over edge weights `d_edge + d_max` (subtracting the final
/// `d_max` once, since only *intermediate* vertices contribute).
///
/// For the paper's chains this reproduces the closed forms exactly:
/// * overlap chain of `m` relations: `(m-2)·d_max` at the ends (§7.9);
/// * range chain, all edges `d`: `(m-2)·d_max + (m-1)·d` at the ends and
///   `d_max + 2d` for the inner relations of a 4-chain (§8, Figure 8).
///
/// `d_max` is the upper bound on the rectangle diagonal across all
/// relations (known from dataset statistics, as the paper assumes).
#[must_use]
pub fn replication_bounds(query: &Query, d_max: Coord) -> Vec<Coord> {
    assert!(d_max >= 0.0, "d_max must be non-negative");
    let g = query.graph();
    let n = query.num_relations();
    let mut bounds = Vec::with_capacity(n);
    for src in 0..n {
        // Dijkstra with weight d_edge + d_max per hop.
        let mut dist = vec![Coord::INFINITY; n];
        dist[src] = 0.0;
        let mut visited = vec![false; n];
        for _ in 0..n {
            // n is tiny (≤ 16): linear extraction beats a heap.
            let Some(u) = (0..n)
                .filter(|&v| !visited[v])
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("finite"))
            else {
                break;
            };
            if dist[u].is_infinite() {
                break;
            }
            visited[u] = true;
            for &(w, p, _) in g.neighbors(RelationId(u as u16)) {
                let cand = dist[u] + p.distance() + d_max;
                if cand < dist[w.index()] {
                    dist[w.index()] = cand;
                }
            }
        }
        // Eccentricity minus the one over-counted d_max (paths with h hops
        // have h-1 intermediate vertices). The source itself is at 0.
        let ecc = dist
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != src)
            .map(|(_, &d)| d)
            .fold(0.0, Coord::max);
        bounds.push((ecc - d_max).max(0.0));
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;

    #[test]
    fn overlap_chain4_matches_paper_7_9() {
        // §7.9 / Figure 6, query Q1 (chain of 4, all overlap): ends need
        // 2 * d_max, inner relations d_max.
        let q = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .overlap("R3", "R4")
            .build()
            .unwrap();
        let d_max = 10.0;
        let b = replication_bounds(&q, d_max);
        assert_eq!(b, vec![20.0, 10.0, 10.0, 20.0]);
    }

    #[test]
    fn range_chain4_matches_paper_section8() {
        // §8 / Figure 8: chain of 4, all Ra(d): ends 2*d_max + 3*d, inner
        // d_max + 2*d.
        let d = 7.0;
        let d_max = 10.0;
        let q = Query::builder()
            .range("R1", "R2", d)
            .range("R2", "R3", d)
            .range("R3", "R4", d)
            .build()
            .unwrap();
        let b = replication_bounds(&q, d_max);
        assert_eq!(b[0], 2.0 * d_max + 3.0 * d);
        assert_eq!(b[3], 2.0 * d_max + 3.0 * d);
        assert_eq!(b[1], d_max + 2.0 * d);
        assert_eq!(b[2], d_max + 2.0 * d);
    }

    #[test]
    fn overlap_chain3_general_formula() {
        // Q2 (3-chain): (m-2)*d_max = d_max at the ends; the middle
        // relation reaches either end in one hop: bound 0 intermediate,
        // i.e. 0 extra — max single-hop cost is d_max - d_max = 0? No:
        // ends: 2 hops = 2*d_max - d_max = d_max; middle: 1 hop = d_max -
        // d_max = 0. A middle rectangle only joins rectangles it touches.
        let q = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        let b = replication_bounds(&q, 10.0);
        assert_eq!(b, vec![10.0, 0.0, 10.0]);
    }

    #[test]
    fn hybrid_query_mixes_edge_weights() {
        // Q4: R1 Ov R2 and R2 Ra(d) R3 with d = 200.
        let q = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 200.0)
            .build()
            .unwrap();
        let d_max = 10.0;
        let b = replication_bounds(&q, d_max);
        // R1 -> R3: 0 + d_max + 200 + d_max - d_max = 210.
        assert_eq!(b[0], 210.0);
        // R2 -> R3 one hop: 200 + d_max - d_max = 200 (larger than R2->R1).
        assert_eq!(b[1], 200.0);
        // R3 -> R1: symmetric to R1.
        assert_eq!(b[2], 210.0);
    }

    #[test]
    fn star_center_bound_smaller_than_leaves() {
        // Star with center C and three leaves: leaves are 2 hops apart.
        let q = Query::builder()
            .overlap("C", "L1")
            .overlap("C", "L2")
            .overlap("C", "L3")
            .build()
            .unwrap();
        let d_max = 5.0;
        let b = replication_bounds(&q, d_max);
        assert_eq!(b[0], 0.0); // center touches everything it joins
        assert_eq!(b[1], d_max); // leaf to leaf crosses the center
    }

    #[test]
    fn cycle_uses_shortest_path() {
        // Triangle: every pair adjacent; all bounds collapse to 0 for
        // overlap (one hop each).
        let q = Query::builder()
            .overlap("A", "B")
            .overlap("B", "C")
            .overlap("C", "A")
            .build()
            .unwrap();
        assert_eq!(replication_bounds(&q, 10.0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_dmax_leaves_range_distances() {
        // Degenerate rectangles (points): chain of 3 ranges.
        let q = Query::builder()
            .range("A", "B", 5.0)
            .range("B", "C", 5.0)
            .build()
            .unwrap();
        let b = replication_bounds(&q, 0.0);
        assert_eq!(b, vec![10.0, 5.0, 10.0]);
    }
}
