//! Precompiled join plans for the reducer-local multi-way matcher.
//!
//! The backtracking matcher binds relations in a BFS order of the join
//! graph; at each depth it probes an index of the next relation from an
//! already-bound neighbor and verifies the remaining predicates to bound
//! relations. Which neighbor drives the probe and which edges need
//! verification depend only on the *depth*, not on the rectangles: after
//! `d` binds the bound set is exactly the first `d` relations of the BFS
//! order. [`JoinPlan::compile`] therefore resolves probe and verify edges
//! once per `(query, start)` pair, so the per-candidate inner loop of the
//! matcher touches no graph structure at all.
//!
//! Two invariants tie the plan to the dynamic matcher it replaces:
//!
//! * **Probe selection** replicates `Iterator::min_by` over the adjacency
//!   list filtered to bound neighbors — the *first* edge with minimal
//!   predicate distance wins ties, in adjacency (= triple declaration)
//!   order.
//! * **Probe-edge elision**: an index probe `query_within(r, d)` accepts a
//!   candidate iff `distance_sq(candidate, r) <= d²`, which for the
//!   symmetric predicates (`Overlap` ⇔ distance 0, `Range(d)` by
//!   definition) *is* the predicate — so the probe edge is dropped from
//!   the verify list. `Contains` is directional (its probe distance is 0,
//!   a necessary overlap filter only) and stays on the verify list.

use crate::graph::JoinGraph;
use crate::query::{Predicate, Query, RelationId};

/// The index probe driving one bind step: probe the step's relation from
/// the already-bound relation `from` with window distance
/// `predicate.distance()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEdge {
    /// The bound relation whose rectangle is the probe window.
    pub from: RelationId,
    /// The predicate on the probe edge (its distance parameterizes the
    /// index query).
    pub predicate: Predicate,
}

/// One predicate a candidate must satisfy against an already-bound
/// relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyEdge {
    /// The bound relation to check against.
    pub against: RelationId,
    /// The predicate on the edge.
    pub predicate: Predicate,
    /// Orientation: when true the candidate is the triple's left side
    /// (the container for `Contains`).
    pub candidate_is_left: bool,
}

/// One bind step of a compiled plan: extend the partial tuple with a
/// rectangle of `relation`, found via `probe` (seeds at depth 0) and
/// checked against every `verify` edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The relation position bound at this depth.
    pub relation: RelationId,
    /// The probe edge; `None` only at depth 0 (every rectangle seeds).
    pub probe: Option<ProbeEdge>,
    /// Predicates to bound relations that the probe does not already
    /// guarantee, in adjacency order.
    pub verify: Vec<VerifyEdge>,
}

/// A compiled bind order: one [`PlanStep`] per relation position, in BFS
/// order from the chosen start vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    steps: Vec<PlanStep>,
}

impl JoinPlan {
    /// Compiles the plan binding `start` first. Equivalent to — and
    /// byte-for-byte interchangeable with — the dynamic probe/verify
    /// selection of the backtracking matcher (see the module docs).
    #[must_use]
    pub fn compile(query: &Query, start: RelationId) -> JoinPlan {
        Self::compile_with(query, &query.graph(), start)
    }

    /// [`JoinPlan::compile`] against a prebuilt graph (compiling all start
    /// vertices shares one adjacency build).
    #[must_use]
    pub fn compile_with(query: &Query, graph: &JoinGraph, start: RelationId) -> JoinPlan {
        let n = query.num_relations();
        let order = graph.bfs_order(start);
        debug_assert_eq!(order.len(), n, "query graphs are connected");
        let mut bound = vec![false; n];
        let mut steps = Vec::with_capacity(n);
        for (depth, &v) in order.iter().enumerate() {
            let mut probe = None;
            // Adjacency index of the probe edge, so the verify filter can
            // skip exactly that entry (parallel edges to the same neighbor
            // must still be verified).
            let mut elided = usize::MAX;
            if depth > 0 {
                let mut best: Option<(usize, RelationId, Predicate)> = None;
                for (i, &(u, p, _)) in graph.neighbors(v).iter().enumerate() {
                    if !bound[u.index()] {
                        continue;
                    }
                    // Strict `<`: first minimal wins, like `min_by`.
                    if best.is_none_or(|(_, _, bp)| p.distance() < bp.distance()) {
                        best = Some((i, u, p));
                    }
                }
                let (i, u, p) =
                    best.expect("BFS order leaves no relation without a bound neighbor");
                if p.is_symmetric() {
                    elided = i;
                }
                probe = Some(ProbeEdge {
                    from: u,
                    predicate: p,
                });
            }
            let verify = graph
                .neighbors(v)
                .iter()
                .enumerate()
                .filter(|&(i, &(w, _, _))| bound[w.index()] && i != elided)
                .map(|(_, &(w, p, forward))| VerifyEdge {
                    against: w,
                    predicate: p,
                    candidate_is_left: forward,
                })
                .collect();
            steps.push(PlanStep {
                relation: v,
                probe,
                verify,
            });
            bound[v.index()] = true;
        }
        JoinPlan { steps }
    }

    /// Compiles one plan per possible start vertex, indexed by the start's
    /// relation position. The matcher picks its start per reducer group
    /// (smallest local relation), so a job precompiles all of them once.
    #[must_use]
    pub fn compile_all(query: &Query) -> Vec<JoinPlan> {
        let graph = query.graph();
        query
            .relations()
            .map(|r| Self::compile_with(query, &graph, r))
            .collect()
    }

    /// The bind steps, depth order.
    #[must_use]
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of relation positions the plan binds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty (never true for valid queries).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Query {
        Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap()
    }

    #[test]
    fn chain_plan_probes_along_the_chain() {
        let plan = JoinPlan::compile(&chain3(), RelationId(0));
        let steps = plan.steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].relation, RelationId(0));
        assert!(steps[0].probe.is_none());
        assert!(steps[0].verify.is_empty());
        // Depth 1 binds R2, probed from R1; the symmetric overlap probe
        // needs no re-verification.
        assert_eq!(steps[1].relation, RelationId(1));
        assert_eq!(steps[1].probe.unwrap().from, RelationId(0));
        assert!(steps[1].verify.is_empty());
        // Depth 2 binds R3 probed from R2.
        assert_eq!(steps[2].relation, RelationId(2));
        assert_eq!(steps[2].probe.unwrap().from, RelationId(1));
        assert!(steps[2].verify.is_empty());
    }

    #[test]
    fn cycle_plan_keeps_the_closing_edge_as_verify() {
        let q = Query::builder()
            .overlap("A", "B")
            .overlap("B", "C")
            .overlap("C", "A")
            .build()
            .unwrap();
        let plan = JoinPlan::compile(&q, RelationId(0));
        let last = plan.steps().last().unwrap();
        // The last bind has two bound neighbors: one drives the probe, the
        // other must be verified.
        assert_eq!(last.verify.len(), 1);
        let probe = last.probe.unwrap();
        assert_ne!(probe.from, last.verify[0].against);
    }

    #[test]
    fn tightest_predicate_drives_the_probe() {
        // BFS from A visits C first (A-C is declared before A-B), so B
        // binds last with both A and C bound. B is reachable from A via
        // Range(50) and from C via Range(5); the tighter edge from C must
        // drive the probe. Relation ids by first appearance: A=0, C=1, B=2.
        let q = Query::builder()
            .overlap("A", "C")
            .range("A", "B", 50.0)
            .range("C", "B", 5.0)
            .build()
            .unwrap();
        let plan = JoinPlan::compile(&q, RelationId(0));
        let b_step = plan
            .steps()
            .iter()
            .find(|s| s.relation == RelationId(2))
            .unwrap();
        assert_eq!(b_step.probe.unwrap().from, RelationId(1));
        assert_eq!(b_step.probe.unwrap().predicate, Predicate::Range(5.0));
        // The looser Range(50) from A still needs verification.
        assert_eq!(b_step.verify.len(), 1);
        assert_eq!(b_step.verify[0].against, RelationId(0));
    }

    #[test]
    fn tie_break_is_first_in_adjacency_order() {
        // Parallel overlap edges between A and B: both have distance 0; the
        // first adjacency entry must drive the probe and the second stays
        // on the verify list.
        let q = Query::builder()
            .overlap("A", "B")
            .range("A", "B", 0.0)
            .build()
            .unwrap();
        let plan = JoinPlan::compile(&q, RelationId(0));
        let step = &plan.steps()[1];
        assert_eq!(step.probe.unwrap().predicate, Predicate::Overlap);
        assert_eq!(step.verify.len(), 1);
        assert_eq!(step.verify[0].predicate, Predicate::Range(0.0));
    }

    #[test]
    fn contains_probe_is_never_elided() {
        let q = Query::builder().contains("A", "B").build().unwrap();
        // Start at B: A is probed (distance 0) but containment is
        // directional, so the edge must still be verified — with A (the
        // candidate) as the container.
        let plan = JoinPlan::compile(&q, RelationId(1));
        let step = &plan.steps()[1];
        assert_eq!(step.relation, RelationId(0));
        assert_eq!(step.probe.unwrap().predicate, Predicate::Contains);
        assert_eq!(step.verify.len(), 1);
        assert!(step.verify[0].candidate_is_left);

        // Start at A: now B is the candidate, the contained side.
        let plan = JoinPlan::compile(&q, RelationId(0));
        let step = &plan.steps()[1];
        assert_eq!(step.relation, RelationId(1));
        assert!(!step.verify[0].candidate_is_left);
    }

    #[test]
    fn compile_all_covers_every_start() {
        let q = chain3();
        let plans = JoinPlan::compile_all(&q);
        assert_eq!(plans.len(), 3);
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(plan.len(), 3);
            assert_eq!(plan.steps()[0].relation, RelationId(i as u16));
            assert_eq!(
                plan,
                &JoinPlan::compile(&q, RelationId(i as u16)),
                "compile_all must agree with compile"
            );
        }
    }

    #[test]
    fn star_center_start_probes_every_leaf_from_the_center() {
        let q = Query::builder()
            .overlap("C", "L1")
            .overlap("C", "L2")
            .overlap("C", "L3")
            .build()
            .unwrap();
        let plan = JoinPlan::compile(&q, RelationId(0));
        for step in plan.steps().iter().skip(1) {
            assert_eq!(step.probe.unwrap().from, RelationId(0));
            assert!(step.verify.is_empty());
        }
    }
}
