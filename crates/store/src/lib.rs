//! Persistent cell-partitioned dataset store.
//!
//! `mwsj ingest` pre-partitions a relation by the same uniform grid the
//! cluster joins on and serializes one STR-packed R-tree per cell in the
//! exact leaf-pack word layout of [`mwsj_rtree::PackedRTree`]. Opening a
//! stored dataset is a single `fs::read` plus one validation scan — no
//! per-rectangle parsing, no tree rebuilding — which is what makes the
//! shuffle-free map-side join pay: the "index build" cost moves to ingest
//! time and query time only pays for traversal.
//!
//! # File layout
//!
//! Everything is little-endian `u64` words. Three sections, each preceded
//! by a `RunFrame`-style frame of two words — `len` (payload words) and an
//! FNV-64 checksum over `len` followed by every payload word:
//!
//! ```text
//! [frame] META    magic, version, fingerprint, record_count,
//!                 x0, xn, y0, yn (f64 bits), cols, rows, num_cells,
//!                 then per cell: entry_start, entry_count,
//!                                node_start, node_count,
//!                                extent min_x, min_y, max_x, max_y (bits)
//! [frame] ENTRIES concatenated per-cell packed entry words (5 per entry)
//! [frame] NODES   concatenated per-cell packed node words (6 per node)
//! ```
//!
//! The grid ranges are the *constructor* values (via [`Grid::x_range`] /
//! [`Grid::y_range`]), so the grid round-trips bit-exactly. The
//! fingerprint is computed over the `(x, y, l, b)` quadruples of the input
//! rectangles in input order with the same [`StableHash`] recipe the
//! server's DFS uses, so a stored dataset and the equivalent in-memory
//! dataset share a cache key.
//!
//! [`StableHash`]: mwsj_mapreduce::StableHash

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use mwsj_geom::Rect;
use mwsj_mapreduce::Fnv64;
use mwsj_partition::{CellId, Grid};
use mwsj_rtree::packed::{ENTRY_WORDS, NODE_WORDS};
use mwsj_rtree::{pack, PackedRTree, RTree};

/// `"MWSJSTOR"` in ASCII, read as a big-endian integer.
pub const MAGIC: u64 = 0x4D57_534A_5354_4F52;

/// Current (and only) format version.
pub const VERSION: u64 = 1;

/// Fixed META words before the per-cell table.
const META_HEADER_WORDS: usize = 11;

/// META words per cell: index ranges plus the cell extent.
const META_CELL_WORDS: usize = 8;

/// Why a store could not be written or opened.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The bytes are not a valid store: truncation, checksum mismatch or a
    /// structural defect found during validation.
    Corrupt(String),
    /// The input cannot be ingested (e.g. a rectangle outside the grid).
    Ingest(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::Ingest(msg) => write!(f, "cannot ingest: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The DFS-compatible fingerprint of a relation: FNV-64 over the record
/// count followed by each rectangle's `(x, y, l, b)` quadruple as IEEE
/// bit patterns, in input order. Byte-identical to what
/// `Dfs::write("…", vec![(x, y, l, b), …])` computes, so the server's
/// result-cache key does not change when a dataset moves into the store.
#[must_use]
pub fn dataset_fingerprint(rects: &[Rect]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(rects.len() as u64);
    for r in rects {
        h.write_u64(r.x().to_bits());
        h.write_u64(r.y().to_bits());
        h.write_u64(r.l().to_bits());
        h.write_u64(r.b().to_bits());
    }
    h.finish()
}

fn frame_checksum(words: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(words.len() as u64);
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

fn push_framed(out: &mut Vec<u64>, section: &[u64]) {
    out.push(section.len() as u64);
    out.push(frame_checksum(section));
    out.extend_from_slice(section);
}

/// Serializes relations into the store format, cell-partitioned by a grid.
#[derive(Debug, Clone, Copy)]
pub struct StoreBuilder<'a> {
    grid: &'a Grid,
}

impl<'a> StoreBuilder<'a> {
    /// A builder that partitions by `grid`. Every dataset ingested with the
    /// same grid is co-partitioned and therefore joinable map-side.
    #[must_use]
    pub fn new(grid: &'a Grid) -> Self {
        Self { grid }
    }

    /// Builds the serialized store for one relation.
    ///
    /// Each rectangle is homed at exactly one cell (the cell of its start
    /// point), assigned its input-order index as payload, and indexed in a
    /// per-cell STR bulk-loaded R-tree.
    ///
    /// # Errors
    /// Rejects relations larger than `u32::MAX` records or containing a
    /// rectangle whose start point lies outside the grid extent.
    pub fn build(&self, rects: &[Rect]) -> Result<Vec<u8>, StoreError> {
        if rects.len() > u32::MAX as usize {
            return Err(StoreError::Ingest(format!(
                "{} records exceed the u32 payload space",
                rects.len()
            )));
        }
        let extent = self.grid.extent();
        let num_cells = self.grid.num_cells() as usize;
        let mut per_cell: Vec<Vec<(Rect, u32)>> = vec![Vec::new(); num_cells];
        for (i, r) in rects.iter().enumerate() {
            if !extent.contains_rect(r) {
                return Err(StoreError::Ingest(format!(
                    "record {i} lies outside the grid extent"
                )));
            }
            per_cell[self.grid.cell_of(r).0 as usize].push((*r, i as u32));
        }

        let mut meta = Vec::with_capacity(META_HEADER_WORDS + num_cells * META_CELL_WORDS);
        meta.push(MAGIC);
        meta.push(VERSION);
        meta.push(dataset_fingerprint(rects));
        meta.push(rects.len() as u64);
        let (x0, xn) = self.grid.x_range();
        let (y0, yn) = self.grid.y_range();
        meta.extend([x0.to_bits(), xn.to_bits(), y0.to_bits(), yn.to_bits()]);
        meta.push(u64::from(self.grid.cols()));
        meta.push(u64::from(self.grid.rows()));
        meta.push(num_cells as u64);

        let mut entry_words: Vec<u64> = Vec::with_capacity(rects.len() * ENTRY_WORDS);
        let mut node_words: Vec<u64> = Vec::new();
        for members in per_cell {
            let extent = members
                .iter()
                .map(|(r, _)| *r)
                .reduce(|a, b| a.union(&b))
                .unwrap_or(Rect::new(0.0, 0.0, 0.0, 0.0));
            let tree = RTree::bulk_load(members);
            let (entries, nodes) = pack(&tree);
            meta.push((entry_words.len() / ENTRY_WORDS) as u64);
            meta.push((entries.len() / ENTRY_WORDS) as u64);
            meta.push((node_words.len() / NODE_WORDS) as u64);
            meta.push((nodes.len() / NODE_WORDS) as u64);
            meta.extend([
                extent.min_x().to_bits(),
                extent.min_y().to_bits(),
                extent.max_x().to_bits(),
                extent.max_y().to_bits(),
            ]);
            entry_words.extend_from_slice(&entries);
            node_words.extend_from_slice(&nodes);
        }

        let mut words = Vec::with_capacity(6 + meta.len() + entry_words.len() + node_words.len());
        push_framed(&mut words, &meta);
        push_framed(&mut words, &entry_words);
        push_framed(&mut words, &node_words);

        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Ok(bytes)
    }

    /// Builds and writes the store for one relation to `path`.
    ///
    /// # Errors
    /// Propagates [`StoreBuilder::build`] failures and filesystem errors.
    pub fn write(&self, rects: &[Rect], path: &Path) -> Result<(), StoreError> {
        fs::write(path, self.build(rects)?)?;
        Ok(())
    }
}

/// Per-cell index ranges, in entry/node units within the global arrays.
#[derive(Debug, Clone, Copy)]
struct CellMeta {
    entry_start: usize,
    entry_count: usize,
    node_start: usize,
    node_count: usize,
    extent: Rect,
}

/// An opened, fully validated stored dataset.
///
/// All structural validation happens once in [`StoredDataset::from_bytes`];
/// afterwards every accessor is infallible.
#[derive(Debug)]
pub struct StoredDataset {
    fingerprint: u64,
    record_count: u64,
    grid: Grid,
    cells: Vec<CellMeta>,
    entries: Vec<u64>,
    nodes: Vec<u64>,
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Splits `words` at a section frame, verifying length and checksum.
fn take_section<'a>(words: &mut &'a [u64], what: &str) -> Result<&'a [u64], StoreError> {
    let [len, checksum, rest @ ..] = words else {
        return Err(corrupt(format!("truncated before the {what} frame")));
    };
    let len = usize::try_from(*len)
        .ok()
        .filter(|&n| n <= rest.len())
        .ok_or_else(|| corrupt(format!("{what} frame length {len} exceeds the file")))?;
    let (section, rest) = rest.split_at(len);
    if frame_checksum(section) != *checksum {
        return Err(corrupt(format!("{what} section failed its checksum")));
    }
    *words = rest;
    Ok(section)
}

impl StoredDataset {
    /// Reads and validates a stored dataset from `path`.
    ///
    /// # Errors
    /// Filesystem failures and every defect [`StoredDataset::from_bytes`]
    /// detects.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// Reads and validates a stored dataset from `path`, restricting the
    /// payload-permutation scan to `seed_cells` (see
    /// [`StoredDataset::from_bytes_scoped`]).
    ///
    /// # Errors
    /// Filesystem failures and every defect
    /// [`StoredDataset::from_bytes_scoped`] detects.
    pub fn open_scoped(path: &Path, seed_cells: std::ops::Range<u32>) -> Result<Self, StoreError> {
        Self::from_bytes_scoped(&fs::read(path)?, seed_cells)
    }

    /// Validates serialized bytes and takes ownership of the word arrays.
    ///
    /// # Errors
    /// Rejects bad magic/version, truncated or checksum-failing sections,
    /// inconsistent grid geometry, out-of-bounds cell ranges, payloads that
    /// are not a permutation of `0..record_count`, and any per-cell tree
    /// that [`PackedRTree::new`] rejects.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_bytes_impl(bytes, None)
    }

    /// Like [`StoredDataset::from_bytes`], but restricts the O(records)
    /// payload-permutation scan to the cells in `seed_cells`.
    ///
    /// This is the open a shard engine uses: it seeds joins only from
    /// its own cell range, so only those cells' payload ids need the
    /// full uniqueness scan. Every other integrity property still holds
    /// globally — section checksums cover every byte, every cell tree
    /// is structurally validated (probes traverse all of them), and a
    /// contiguity check on the per-cell index ranges guarantees the
    /// cells tile the entry/node arrays without gaps or overlap.
    /// Out-of-scope payload *ids* are trusted (they are still
    /// checksummed, just not cross-checked for global uniqueness), so
    /// prefer [`StoredDataset::from_bytes`] when the open is not
    /// range-scoped.
    ///
    /// # Errors
    /// Everything [`StoredDataset::from_bytes`] rejects (minus
    /// out-of-scope payload defects), plus a `seed_cells` range that
    /// does not lie within the grid.
    pub fn from_bytes_scoped(
        bytes: &[u8],
        seed_cells: std::ops::Range<u32>,
    ) -> Result<Self, StoreError> {
        Self::from_bytes_impl(bytes, Some(seed_cells))
    }

    fn from_bytes_impl(
        bytes: &[u8],
        scope: Option<std::ops::Range<u32>>,
    ) -> Result<Self, StoreError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(corrupt(format!(
                "file size {} is not a whole number of words",
                bytes.len()
            )));
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        let mut rest = words.as_slice();
        let meta = take_section(&mut rest, "META")?;
        let entries = take_section(&mut rest, "ENTRIES")?.to_vec();
        let nodes = take_section(&mut rest, "NODES")?.to_vec();
        if !rest.is_empty() {
            return Err(corrupt(format!("{} trailing words", rest.len())));
        }

        if meta.len() < META_HEADER_WORDS {
            return Err(corrupt("META header is truncated"));
        }
        if meta[0] != MAGIC {
            return Err(corrupt("bad magic: not a dataset store"));
        }
        if meta[1] != VERSION {
            return Err(corrupt(format!("unsupported format version {}", meta[1])));
        }
        let fingerprint = meta[2];
        let record_count = meta[3];
        let x0 = f64::from_bits(meta[4]);
        let xn = f64::from_bits(meta[5]);
        let y0 = f64::from_bits(meta[6]);
        let yn = f64::from_bits(meta[7]);
        let cols = u32::try_from(meta[8]).map_err(|_| corrupt("column count exceeds u32"))?;
        let rows = u32::try_from(meta[9]).map_err(|_| corrupt("row count exceeds u32"))?;
        if !(x0.is_finite()
            && xn.is_finite()
            && y0.is_finite()
            && yn.is_finite()
            && xn > x0
            && yn > y0)
        {
            return Err(corrupt("grid ranges are not finite ascending intervals"));
        }
        if cols == 0 || rows == 0 || cols.checked_mul(rows).is_none() {
            return Err(corrupt("grid cell counts are zero or overflow"));
        }
        let grid = Grid::new((x0, xn), (y0, yn), cols, rows);
        let num_cells = grid.num_cells() as usize;
        if meta[10] != num_cells as u64 {
            return Err(corrupt(format!(
                "cell table claims {} cells for a {cols}x{rows} grid",
                meta[10]
            )));
        }
        if meta.len() != META_HEADER_WORDS + num_cells * META_CELL_WORDS {
            return Err(corrupt("META cell table has the wrong length"));
        }
        if let Some(r) = &scope {
            if r.start > r.end || r.end as usize > num_cells {
                return Err(corrupt(format!(
                    "seed cell range {}..{} does not lie within the {num_cells}-cell grid",
                    r.start, r.end
                )));
            }
        }

        let total_entries = entries.len() / ENTRY_WORDS;
        let total_nodes = nodes.len() / NODE_WORDS;
        let mut cells = Vec::with_capacity(num_cells);
        let mut seen = vec![false; total_entries];
        // Running offsets for the contiguity check: the builder lays the
        // cells' entry/node ranges out back to back, so the ranges must
        // tile the arrays exactly — which is what lets a scoped open
        // skip the per-payload scan for out-of-scope cells without
        // giving up coverage or disjointness.
        let mut next_entry = 0usize;
        let mut next_node = 0usize;
        let as_range = |start: u64, count: u64, total: usize, what: &str, c: usize| {
            let start = usize::try_from(start).map_err(|_| corrupt("range overflow"))?;
            let count = usize::try_from(count).map_err(|_| corrupt("range overflow"))?;
            if start.checked_add(count).is_none_or(|end| end > total) {
                return Err(corrupt(format!(
                    "cell {c}: {what} range {start}+{count} exceeds {total}"
                )));
            }
            Ok((start, count))
        };
        for c in 0..num_cells {
            let base = META_HEADER_WORDS + c * META_CELL_WORDS;
            let (entry_start, entry_count) =
                as_range(meta[base], meta[base + 1], total_entries, "entry", c)?;
            let (node_start, node_count) =
                as_range(meta[base + 2], meta[base + 3], total_nodes, "node", c)?;
            let extent = Rect::from_bounds(
                f64::from_bits(meta[base + 4]),
                f64::from_bits(meta[base + 5]),
                f64::from_bits(meta[base + 6]),
                f64::from_bits(meta[base + 7]),
            )
            .ok_or_else(|| corrupt(format!("cell {c}: non-finite or inverted extent")))?;
            let cell = CellMeta {
                entry_start,
                entry_count,
                node_start,
                node_count,
                extent,
            };
            if entry_start != next_entry || node_start != next_node {
                return Err(corrupt(format!(
                    "cell {c}: index ranges are not laid out contiguously"
                )));
            }
            next_entry += entry_count;
            next_node += node_count;
            // Validates word structure, node kinds, ranges and rectangles.
            let tree = cell_tree_of(&entries, &nodes, &cell)
                .map_err(|e| corrupt(format!("cell {c}: {e}")))?;
            let in_scope = scope
                .as_ref()
                .is_none_or(|r| (c as u64) >= u64::from(r.start) && (c as u64) < u64::from(r.end));
            if in_scope {
                for (_, id) in tree.iter() {
                    let id = id as usize;
                    if id as u64 >= record_count || seen[id] {
                        return Err(corrupt(format!(
                            "cell {c}: payload {id} is out of range or duplicated"
                        )));
                    }
                    seen[id] = true;
                }
            }
            cells.push(cell);
        }
        if next_entry != total_entries || next_node != total_nodes {
            return Err(corrupt(
                "cell index ranges do not cover the entry/node arrays",
            ));
        }
        if total_entries as u64 != record_count {
            return Err(corrupt(format!(
                "{total_entries} indexed entries for {record_count} records"
            )));
        }
        Ok(Self {
            fingerprint,
            record_count,
            grid,
            cells,
            entries,
            nodes,
        })
    }

    /// The DFS-compatible dataset fingerprint recorded at ingest time.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of records in the relation.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The partitioning grid, reconstructed bit-exactly.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The packed R-tree over the records homed at `cell`.
    ///
    /// # Panics
    /// Panics when `cell` is out of range for the grid.
    #[must_use]
    pub fn cell_tree(&self, cell: CellId) -> PackedRTree<'_> {
        let meta = &self.cells[cell.0 as usize];
        cell_tree_of(&self.entries, &self.nodes, meta).expect("validated at open")
    }

    /// The union extent of the records homed at `cell`; `None` when the
    /// cell is empty.
    #[must_use]
    pub fn cell_extent(&self, cell: CellId) -> Option<Rect> {
        let meta = &self.cells[cell.0 as usize];
        (meta.entry_count > 0).then_some(meta.extent)
    }

    /// The rectangle of global entry `i` in storage (leaf-pack) order —
    /// O(1) random access for sampling without materializing.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn nth_rect(&self, i: usize) -> Rect {
        let base = i * ENTRY_WORDS;
        Rect::from_bounds(
            f64::from_bits(self.entries[base]),
            f64::from_bits(self.entries[base + 1]),
            f64::from_bits(self.entries[base + 2]),
            f64::from_bits(self.entries[base + 3]),
        )
        .expect("validated at open")
    }

    /// Iterates over every `(rect, input_order_id)` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Rect, u32)> + '_ {
        (0..self.record_count as usize).map(|i| {
            let base = i * ENTRY_WORDS;
            (self.nth_rect(i), self.entries[base + 4] as u32)
        })
    }

    /// Reconstructs the relation in original input order — the fallback
    /// for algorithms that need materialized inputs. Corner coordinates
    /// are bit-exact to the ingested rectangles.
    #[must_use]
    pub fn materialize(&self) -> Vec<Rect> {
        let mut out = vec![Rect::new(0.0, 0.0, 0.0, 0.0); self.record_count as usize];
        for cell in &self.cells {
            let tree = cell_tree_of(&self.entries, &self.nodes, cell).expect("validated at open");
            for (rect, id) in tree.iter() {
                out[id as usize] = rect;
            }
        }
        out
    }
}

fn cell_tree_of<'a>(
    entries: &'a [u64],
    nodes: &'a [u64],
    cell: &CellMeta,
) -> Result<PackedRTree<'a>, String> {
    let e = cell.entry_start * ENTRY_WORDS..(cell.entry_start + cell.entry_count) * ENTRY_WORDS;
    let n = cell.node_start * NODE_WORDS..(cell.node_start + cell.node_count) * NODE_WORDS;
    PackedRTree::new(&entries[e], &nodes[n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid() -> Grid {
        Grid::square((0.0, 1000.0), (0.0, 1000.0), 4)
    }

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..960.0);
                let y = rng.random_range(40.0..1000.0);
                let l = rng.random_range(0.0..40.0);
                let b = rng.random_range(0.0..40.0);
                Rect::new(x, y, l, b)
            })
            .collect()
    }

    #[test]
    fn round_trips_records_grid_and_fingerprint() {
        let grid = grid();
        let rects = random_rects(500, 7);
        let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
        let store = StoredDataset::from_bytes(&bytes).unwrap();
        assert_eq!(store.record_count(), 500);
        assert_eq!(store.fingerprint(), dataset_fingerprint(&rects));
        assert_eq!(store.grid(), &grid);
        assert_eq!(store.materialize(), rects);
    }

    #[test]
    fn cells_partition_the_relation_by_home_cell() {
        let grid = grid();
        let rects = random_rects(300, 11);
        let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
        let store = StoredDataset::from_bytes(&bytes).unwrap();
        let mut total = 0;
        for cell in grid.cells() {
            let tree = store.cell_tree(cell);
            total += tree.len();
            for (rect, id) in tree.iter() {
                assert_eq!(grid.cell_of(&rect), cell);
                assert_eq!(rects[id as usize], rect);
                let extent = store.cell_extent(cell).unwrap();
                assert!(extent.contains_rect(&rect));
            }
        }
        assert_eq!(total, rects.len());
    }

    #[test]
    fn empty_relation_round_trips() {
        let grid = grid();
        let bytes = StoreBuilder::new(&grid).build(&[]).unwrap();
        let store = StoredDataset::from_bytes(&bytes).unwrap();
        assert_eq!(store.record_count(), 0);
        assert!(store.materialize().is_empty());
        for cell in grid.cells() {
            assert!(store.cell_tree(cell).is_empty());
            assert_eq!(store.cell_extent(cell), None);
        }
    }

    #[test]
    fn rejects_rects_outside_the_grid() {
        let grid = grid();
        let rects = vec![Rect::new(1500.0, 100.0, 5.0, 5.0)];
        assert!(matches!(
            StoreBuilder::new(&grid).build(&rects),
            Err(StoreError::Ingest(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_round_trip_matches_the_dfs_recipe(
            raw in proptest::collection::vec(
                (0.0..950.0f64, 50.0..1000.0f64, 0.0..50.0f64, 0.0..50.0f64),
                0..120,
            )
        ) {
            let grid = grid();
            let rects: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, l, b)| Rect::new(x, y, l, b))
                .collect();
            let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
            let store = StoredDataset::from_bytes(&bytes).unwrap();

            // Ingest -> open preserves the records bit-for-bit...
            prop_assert_eq!(store.record_count(), rects.len() as u64);
            prop_assert_eq!(store.materialize(), rects.clone());

            // ...and the fingerprint is exactly what `Dfs::write` seals
            // for the materialized twin, so the server's result-cache key
            // does not depend on whether a binding came from the store.
            let dfs = mwsj_mapreduce::Dfs::new();
            let records: Vec<(f64, f64, f64, f64)> =
                rects.iter().map(|r| (r.x(), r.y(), r.l(), r.b())).collect();
            dfs.write("r", records);
            prop_assert_eq!(store.fingerprint(), dfs.fingerprint("r").unwrap().0);
        }
    }

    #[test]
    fn scoped_open_matches_the_full_open() {
        let grid = grid();
        let rects = random_rects(400, 21);
        let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
        let full = StoredDataset::from_bytes(&bytes).unwrap();
        let num_cells = grid.num_cells();
        for range in [0..num_cells, 0..4, 4..11, 11..num_cells, 5..5] {
            let scoped = StoredDataset::from_bytes_scoped(&bytes, range.clone()).unwrap();
            assert_eq!(scoped.fingerprint(), full.fingerprint());
            assert_eq!(scoped.record_count(), full.record_count());
            assert_eq!(scoped.grid(), full.grid());
            for cell in grid.cells() {
                // Every cell tree — in scope or not — is identical to
                // the full open's view; probes traverse all of them.
                let a: Vec<_> = scoped.cell_tree(cell).iter().collect();
                let b: Vec<_> = full.cell_tree(cell).iter().collect();
                assert_eq!(a, b, "cell {cell:?} under scope {range:?}");
            }
        }
    }

    #[test]
    fn scoped_open_still_verifies_every_checksum() {
        let grid = grid();
        let rects = random_rects(150, 23);
        let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
        // Corrupt a byte deep in the ENTRIES section: even when the
        // damaged cell is outside the scope, the section checksum fires.
        let mut bad = bytes.clone();
        let at = bad.len() - 64;
        bad[at] ^= 0x01;
        assert!(StoredDataset::from_bytes_scoped(&bad, 0..1).is_err());
    }

    #[test]
    fn scoped_range_must_lie_within_the_grid() {
        let grid = grid();
        let bytes = StoreBuilder::new(&grid)
            .build(&random_rects(10, 29))
            .unwrap();
        let num_cells = grid.num_cells();
        assert!(StoredDataset::from_bytes_scoped(&bytes, 0..num_cells + 1).is_err());
        assert!(StoredDataset::from_bytes_scoped(&bytes, num_cells..num_cells).is_ok());
    }

    #[test]
    fn every_corrupted_word_is_detected() {
        let grid = grid();
        let rects = random_rects(200, 3);
        let bytes = StoreBuilder::new(&grid).build(&rects).unwrap();
        assert!(StoredDataset::from_bytes(&bytes).is_ok());

        // Truncations at every section boundary.
        for cut in [0, 8, 80, bytes.len() / 2, bytes.len() - 8] {
            assert!(
                StoredDataset::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // Odd byte length.
        assert!(StoredDataset::from_bytes(&bytes[..bytes.len() - 3]).is_err());

        // Flip one bit in every word: either a frame checksum fires or
        // (for the frame words themselves) structural validation does.
        let words = bytes.len() / 8;
        let mut rng = StdRng::seed_from_u64(99);
        for w in 0..words {
            let mut bad = bytes.clone();
            let bit = rng.random_range(0..64u32);
            let byte = w * 8 + (bit / 8) as usize;
            bad[byte] ^= 1 << (bit % 8);
            assert!(
                StoredDataset::from_bytes(&bad).is_err(),
                "flipped bit {bit} of word {w} went undetected"
            );
        }
    }
}
