//! The paper's real-data experiment (§7.8.6) at example scale: the star
//! self-join `Q2s = R Ov R and R Ov R` over California-road-like MBBs,
//! sweeping the enlargement factor `k`.
//!
//! ```text
//! cargo run --release --example california_roads [n_roads]
//! ```
//!
//! As `k` grows, road MBBs overlap more, the output explodes and the gap
//! between the naive cascade and Controlled-Replicate widens — the shape
//! of the paper's Table 4.

use mwsj_core::{Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::{enlarge_all, CaliforniaConfig, CaliforniaStats};
use mwsj_geom::Rect;
use mwsj_query::Query;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    let roads = CaliforniaConfig::new(n, 2013).generate();
    let stats = CaliforniaStats::of(&roads);
    println!("California-like road MBBs: {n} rectangles");
    println!(
        "  mean length {:.1}, mean breadth {:.1}, max length {:.0}, max breadth {:.0}",
        stats.mean_length, stats.mean_breadth, stats.max_length, stats.max_breadth
    );
    println!(
        "  {:.1}% with both sides < 100, {:.2}% < 1000",
        stats.frac_both_under_100 * 100.0,
        stats.frac_both_under_1000 * 100.0
    );

    let space = Rect::new(0.0, 100_000.0, 63_000.0, 100_000.0);
    let cluster = Cluster::new(ClusterConfig::for_space(
        (0.0, 63_000.0),
        (0.0, 100_000.0),
        8,
    ));
    let query = Query::parse("Ra ov Rb and Rb ov Rc").expect("valid query");
    println!("\nquery: {query}  (star self-join over the road MBBs)\n");
    println!(
        "{:>6} | {:>10} | {:>12} | {:>12} | {:>14}",
        "k", "tuples", "C-Rep ms", "marked", "after-repl"
    );
    println!("{}", "-".repeat(66));

    for k in [1.0, 1.25, 1.5, 1.75, 2.0] {
        let data = enlarge_all(&roads, k, &space);
        let t0 = Instant::now();
        let out = cluster.run(
            &query,
            &[&data, &data, &data],
            Algorithm::ControlledReplicateLimit,
        );
        let elapsed = t0.elapsed();
        println!(
            "{k:>6.2} | {:>10} | {:>12.1} | {:>12} | {:>14}",
            out.len(),
            elapsed.as_secs_f64() * 1e3,
            out.stats.rectangles_replicated,
            out.stats.rectangles_after_replication,
        );
    }
}
