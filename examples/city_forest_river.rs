//! The paper's motivating query (§1): *"find all cities adjacent to a
//! forest and overlapping with a river"* — a hybrid multi-way join over
//! polygon datasets, run as the two-step filter + refinement pipeline of
//! §1.1.
//!
//! ```text
//! cargo run --release --example city_forest_river
//! ```
//!
//! Cities, forests and rivers are generated as polygons; the distributed
//! join runs over their MBRs (the *filter* step) and the exact polygon
//! geometry prunes the false positives (the *refinement* step).

use mwsj_core::{refine, Algorithm, Cluster, ClusterConfig};
use mwsj_geom::{Point, Polygon, Rect};
use mwsj_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPACE: f64 = 10_000.0;

/// A random convex-ish blob polygon around a center.
fn blob(rng: &mut StdRng, cx: f64, cy: f64, radius: f64, vertices: usize) -> Polygon {
    let pts = (0..vertices)
        .map(|i| {
            let angle = std::f64::consts::TAU * i as f64 / vertices as f64;
            let r = radius * rng.random_range(0.55..1.0);
            Point::new(
                (cx + r * angle.cos()).clamp(0.0, SPACE),
                (cy + r * angle.sin()).clamp(0.0, SPACE),
            )
        })
        .collect();
    Polygon::new(pts)
}

/// A long, thin zig-zag polygon — a river.
fn river(rng: &mut StdRng) -> Polygon {
    let x0 = rng.random_range(0.0..SPACE * 0.6);
    let y0 = rng.random_range(SPACE * 0.2..SPACE);
    let len = rng.random_range(600.0..2_000.0);
    let width = rng.random_range(15.0..50.0);
    let dir = rng.random_range(-0.5..0.5f64);
    // Upper bank, then lower bank back.
    let segments = 6;
    let mut upper = Vec::new();
    let mut lower = Vec::new();
    for i in 0..=segments {
        let t = i as f64 / segments as f64;
        let x = (x0 + t * len).clamp(0.0, SPACE);
        let y = (y0 + t * len * dir + (t * 9.0).sin() * 60.0).clamp(width, SPACE);
        upper.push(Point::new(x, y));
        lower.push(Point::new(x, y - width));
    }
    lower.reverse();
    upper.extend(lower);
    Polygon::new(upper)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // Cities: medium blobs; forests: large blobs; rivers: thin zig-zags.
    let cities: Vec<Polygon> = (0..400)
        .map(|_| {
            let (cx, cy) = (rng.random_range(0.0..SPACE), rng.random_range(0.0..SPACE));
            let r = rng.random_range(60.0..250.0);
            blob(&mut rng, cx, cy, r, 8)
        })
        .collect();
    let forests: Vec<Polygon> = (0..300)
        .map(|_| {
            let (cx, cy) = (rng.random_range(0.0..SPACE), rng.random_range(0.0..SPACE));
            let r = rng.random_range(150.0..500.0);
            blob(&mut rng, cx, cy, r, 10)
        })
        .collect();
    let rivers: Vec<Polygon> = (0..250).map(|_| river(&mut rng)).collect();

    // Filter step: the join runs over MBRs.
    let city_mbrs: Vec<Rect> = cities.iter().map(Polygon::mbr).collect();
    let forest_mbrs: Vec<Rect> = forests.iter().map(Polygon::mbr).collect();
    let river_mbrs: Vec<Rect> = rivers.iter().map(Polygon::mbr).collect();

    // "Adjacent to a forest" = within 100 units; "overlaps a river".
    let query =
        Query::parse("city within 100 of forest and city overlaps river").expect("valid query");
    println!("query : {query}");

    let cluster = Cluster::new(ClusterConfig::for_space((0.0, SPACE), (0.0, SPACE), 8));
    let filtered = cluster.run(
        &query,
        &[&city_mbrs, &forest_mbrs, &river_mbrs],
        Algorithm::ControlledReplicateLimit,
    );
    println!(
        "filter step : {} candidate (city, forest, river) triples",
        filtered.len()
    );
    println!(
        "  {} rectangles replicated, {} after replication",
        filtered.stats.rectangles_replicated, filtered.stats.rectangles_after_replication
    );

    // Refinement step: exact polygon predicates.
    let exact = refine::refine_tuples(&query, &[&cities, &forests, &rivers], &filtered.tuples);
    println!(
        "refine step : {} true triples ({} MBR false positives removed)",
        exact.len(),
        filtered.len() - exact.len()
    );
    for t in exact.iter().take(5) {
        println!("  city {} / forest {} / river {}", t[0], t[1], t[2]);
    }
}
