//! Head-to-head comparison of all four algorithms on one workload — a
//! miniature of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example algorithm_shootout [n_per_relation]
//! ```
//!
//! Prints wall time, intermediate key-value pairs, shuffle bytes and DFS
//! traffic per algorithm, and verifies that all four produce the same
//! result.

use mwsj_core::{Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    // Scale the space with sqrt(n) so the join selectivity matches the
    // paper's density (1M rectangles with sides <= 100 in 100K²).
    let extent = 100_000.0 * (n as f64 / 1_000_000.0).sqrt();
    let gen = |seed| {
        let mut cfg = SyntheticConfig::paper_default(n, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(1), gen(2), gen(3));

    let query = Query::parse("R1 ov R2 and R2 ov R3").expect("valid query");
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, extent), (0.0, extent), 8));

    println!("query   : {query}");
    println!("space   : {extent:.0} x {extent:.0}, 8x8 reducer grid");
    println!("input   : 3 x {n} rectangles\n");
    println!(
        "{:<14} | {:>9} | {:>9} | {:>12} | {:>12} | {:>10} | {:>10}",
        "algorithm", "tuples", "ms", "kv pairs", "shuffle B", "dfs R B", "dfs W B"
    );
    println!("{}", "-".repeat(92));

    let mut reference: Option<Vec<Vec<u32>>> = None;
    for alg in Algorithm::ALL {
        let t0 = Instant::now();
        let out = cluster.run(&query, &[&r1, &r2, &r3], alg);
        let elapsed = t0.elapsed();
        println!(
            "{:<14} | {:>9} | {:>9.1} | {:>12} | {:>12} | {:>10} | {:>10}",
            alg.name(),
            out.len(),
            elapsed.as_secs_f64() * 1e3,
            out.report.total_intermediate_records(),
            out.report.total_shuffle_bytes(),
            out.report.dfs_read_bytes,
            out.report.dfs_write_bytes,
        );
        match &reference {
            None => reference = Some(out.tuples),
            Some(expected) => assert_eq!(
                &out.tuples,
                expected,
                "{} disagrees with the other algorithms",
                alg.name()
            ),
        }
    }
    println!("\nall four algorithms produced identical results ✓");
}
