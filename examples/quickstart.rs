//! Quickstart: run a multi-way spatial join on the simulated cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates three synthetic rectangle relations, evaluates the paper's
//! Q2 chain query (`R1 overlaps R2 and R2 overlaps R3`) with
//! Controlled-Replicate, and prints the result alongside the metrics the
//! paper's evaluation reports.

use mwsj_core::{Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    // Three relations of 5,000 rectangles in a 20K x 20K space.
    let gen = |seed| {
        let mut cfg = SyntheticConfig::paper_default(5_000, seed);
        cfg.x_range = (0.0, 20_000.0);
        cfg.y_range = (0.0, 20_000.0);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(1), gen(2), gen(3));

    // The query language accepts `overlaps` / `ov` and `within d of` /
    // `ra(d)` clauses joined by `and`.
    let query = Query::parse("R1 overlaps R2 and R2 overlaps R3").expect("valid query");
    println!("query : {query}");

    // An 8x8 grid of 64 logical reducers, as in the paper's cluster.
    let cluster = Cluster::new(ClusterConfig::for_space(
        (0.0, 20_000.0),
        (0.0, 20_000.0),
        8,
    ));

    let output = cluster.run(&query, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);

    println!("output : {} tuples", output.len());
    for tuple in output.tuples.iter().take(5) {
        println!("  R1[{}] x R2[{}] x R3[{}]", tuple[0], tuple[1], tuple[2]);
    }
    if output.len() > 5 {
        println!("  ... and {} more", output.len() - 5);
    }

    println!("\nmetrics:");
    println!(
        "  rectangles replicated        : {}",
        output.stats.rectangles_replicated
    );
    println!(
        "  rectangles after replication : {}",
        output.stats.rectangles_after_replication
    );
    for job in &output.report.jobs {
        println!(
            "  job `{}`: {} intermediate pairs, {} shuffle bytes, {:?}",
            job.job_name, job.map_output_records, job.shuffle_bytes, job.total_wall
        );
    }
}
