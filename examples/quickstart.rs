//! Quickstart: run a multi-way spatial join on the simulated cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates three synthetic rectangle relations, evaluates the paper's
//! Q2 chain query (`R1 overlaps R2 and R2 overlaps R3`) with
//! Controlled-Replicate, and prints the result alongside the metrics the
//! paper's evaluation reports.

use mwsj_core::mapreduce::TraceSink;
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    // Three relations of 5,000 rectangles in a 20K x 20K space.
    let gen = |seed| {
        let mut cfg = SyntheticConfig::paper_default(5_000, seed);
        cfg.x_range = (0.0, 20_000.0);
        cfg.y_range = (0.0, 20_000.0);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(1), gen(2), gen(3));

    // The query language accepts `overlaps` / `ov` and `within d of` /
    // `ra(d)` clauses joined by `and`.
    let query = Query::parse("R1 overlaps R2 and R2 overlaps R3").expect("valid query");
    println!("query : {query}");

    // An 8x8 grid of 64 logical reducers, as in the paper's cluster.
    let cluster = Cluster::new(ClusterConfig::for_space(
        (0.0, 20_000.0),
        (0.0, 20_000.0),
        8,
    ));

    // A recording sink captures one span per job, phase and task attempt;
    // `JoinRun` describes the run (algorithm, count-only mode, tracing).
    let trace = TraceSink::recording();
    let relations: [&[_]; 3] = [&r1, &r2, &r3];
    let run = JoinRun::new(&query, &relations)
        .algorithm(Algorithm::ControlledReplicate)
        .trace(trace.clone());
    let output = cluster.submit(&run).expect("fault-free join");

    println!("output : {} tuples", output.len());
    for tuple in output.tuples.iter().take(5) {
        println!("  R1[{}] x R2[{}] x R3[{}]", tuple[0], tuple[1], tuple[2]);
    }
    if output.len() > 5 {
        println!("  ... and {} more", output.len() - 5);
    }

    println!("\nmetrics:");
    println!(
        "  rectangles replicated        : {}",
        output.stats.rectangles_replicated
    );
    println!(
        "  rectangles after replication : {}",
        output.stats.rectangles_after_replication
    );
    print!("{}", output.report.phase_table());

    // Set MWSJ_TRACE_OUT=trace.json to export the recorded spans as a
    // chrome://tracing file (load it at ui.perfetto.dev).
    if let Ok(path) = std::env::var("MWSJ_TRACE_OUT") {
        std::fs::write(&path, trace.to_chrome_trace()).expect("writing trace file");
        println!("\ntrace  : {} events -> {path}", trace.len());
    }
}
