//! Observability round-trip suite: the trace a join run records must be
//! exportable as valid JSON (both the JSONL event log and the
//! chrome://tracing file), its span tree must nest properly — every
//! attempt inside its phase, every phase inside its job — and the counter
//! snapshots embedded in the trace must equal the run's [`MetricsReport`]
//! exactly. A chaos run additionally shows every retried attempt as a
//! distinct span while the logical counters stay byte-identical to the
//! fault-free run.

use mwsj_core::mapreduce::{
    validate_json, FaultPlan, ForcedFault, JobMetrics, Phase, SpanPhase, TraceEvent, TraceSink,
};
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinOutput, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;

fn synthetic(n: usize, seed: u64) -> Vec<Rect> {
    mwsj_datagen::SyntheticConfig::paper_default(n, seed).generate()
}

/// A cluster with pinned engine parallelism so fault decisions — and span
/// counts — are machine-independent.
fn cluster_with(plan: Option<FaultPlan>) -> Cluster {
    let mut config = ClusterConfig::for_space((0.0, 100_000.0), (0.0, 100_000.0), 8);
    config.engine.map_tasks = 4;
    config.engine.reduce_tasks = 4;
    config.engine.fault_plan = plan;
    Cluster::new(config)
}

fn chain_query() -> Query {
    Query::parse("R1 ov R2 and R2 ov R3").unwrap()
}

/// Runs one traced join and returns the sink alongside the output.
fn traced_run(plan: Option<FaultPlan>, alg: Algorithm) -> (TraceSink, JoinOutput) {
    let q = chain_query();
    let r1 = synthetic(1_500, 61);
    let r2 = synthetic(1_500, 62);
    let r3 = synthetic(1_500, 63);
    let sink = TraceSink::recording();
    let out = cluster_with(plan)
        .submit(
            &JoinRun::new(&q, &[&r1, &r2, &r3])
                .algorithm(alg)
                .trace(sink.clone()),
        )
        .expect("traced join");
    (sink, out)
}

/// The per-job counter snapshots recorded in the trace, in job order.
fn counter_snapshots(sink: &TraceSink) -> Vec<JobMetrics> {
    let mut snaps: Vec<(u64, JobMetrics)> = sink
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Counters { job, metrics, .. } => Some((*job, (**metrics).clone())),
            _ => None,
        })
        .collect();
    snaps.sort_by_key(|(job, _)| *job);
    snaps.into_iter().map(|(_, m)| m).collect()
}

#[test]
fn jsonl_export_round_trips_and_covers_every_job() {
    let (sink, out) = traced_run(None, Algorithm::ControlledReplicate);
    let jsonl = sink.to_jsonl();
    assert!(!jsonl.is_empty());

    for (i, line) in jsonl.lines().enumerate() {
        validate_json(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
    }

    // Every job in the report appears as a start/end pair and by name.
    for job in &out.report.jobs {
        assert!(
            jsonl.contains(&format!("\"name\":\"{}\"", job.job_name)),
            "missing job_start for {}",
            job.job_name
        );
    }
    let starts = jsonl.matches("\"type\":\"job_start\"").count();
    let ends = jsonl.matches("\"type\":\"job_end\"").count();
    assert_eq!(starts, out.report.num_jobs());
    assert_eq!(ends, out.report.num_jobs());
    // Three phases per job, started and ended.
    let phase_starts = jsonl.matches("\"type\":\"phase_start\"").count();
    assert_eq!(phase_starts, 3 * out.report.num_jobs());
    assert_eq!(
        jsonl.matches("\"type\":\"phase_end\"").count(),
        phase_starts
    );
}

#[test]
fn chrome_trace_is_loadable_and_names_every_span_kind() {
    let (sink, out) = traced_run(None, Algorithm::TwoWayCascade);
    let trace = sink.to_chrome_trace();
    validate_json(&trace).expect("chrome trace must be one well-formed JSON document");

    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    for job in &out.report.jobs {
        assert!(
            trace.contains(&format!("\"job:{}\"", job.job_name)),
            "missing job slice for {}",
            job.job_name
        );
    }
    // Phase slices on lane 0, attempt slices on per-task lanes, one counter
    // sample per job.
    for phase in ["\"map\"", "\"shuffle\"", "\"reduce\""] {
        assert!(trace.contains(&format!("{{\"name\":{phase},\"cat\":\"phase\"")));
    }
    assert!(trace.contains("\"cat\":\"attempt\""));
    assert!(trace.contains("map task 0 attempt 0"));
    assert!(trace.contains("reduce task 0 attempt 0"));
    assert_eq!(
        trace.matches("\"ph\":\"C\"").count(),
        out.report.num_jobs(),
        "one counter sample per job"
    );
    // Process metadata names each job.
    assert_eq!(
        trace.matches("\"process_name\"").count(),
        out.report.num_jobs()
    );
}

#[test]
fn span_tree_nests_attempts_in_phases_in_jobs() {
    let (sink, out) = traced_run(None, Algorithm::ControlledReplicateLimit);
    let events = sink.events();

    for jobid in 0..out.report.num_jobs() as u64 {
        let job_span = span_of(&events, jobid, None);
        for phase in [SpanPhase::Map, SpanPhase::Shuffle, SpanPhase::Reduce] {
            let phase_span = span_of(&events, jobid, Some(phase));
            assert!(
                job_span.0 <= phase_span.0 && phase_span.1 <= job_span.1,
                "job {jobid}: {phase} span {phase_span:?} outside job span {job_span:?}"
            );
        }
        let (map, reduce) = (
            span_of(&events, jobid, Some(SpanPhase::Map)),
            span_of(&events, jobid, Some(SpanPhase::Reduce)),
        );
        let mut attempts = 0;
        for ev in &events {
            if let TraceEvent::Attempt {
                job,
                phase,
                task,
                start,
                end,
                ..
            } = ev
            {
                if *job != jobid {
                    continue;
                }
                attempts += 1;
                let owner = match phase {
                    Phase::Map => map,
                    Phase::Reduce => reduce,
                };
                assert!(
                    owner.0 <= *start && *end <= owner.1,
                    "job {jobid} {phase:?} task {task}: attempt [{start}, {end}] \
                     outside phase span {owner:?}"
                );
            }
        }
        // Pinned parallelism: 4 map + 4 reduce tasks, ≥ 1 attempt each.
        assert!(attempts >= 8, "job {jobid}: only {attempts} attempt spans");
    }
}

/// Start/end timestamps of a job span (`phase: None`) or a phase span.
fn span_of(events: &[TraceEvent], jobid: u64, phase: Option<SpanPhase>) -> (u64, u64) {
    let mut start = None;
    let mut end = None;
    for ev in events {
        match (ev, phase) {
            (TraceEvent::JobStart { job, ts, .. }, None) if *job == jobid => start = Some(*ts),
            (TraceEvent::JobEnd { job, ts, .. }, None) if *job == jobid => end = Some(*ts),
            (TraceEvent::PhaseStart { job, phase, ts }, Some(p))
                if *job == jobid && *phase == p =>
            {
                start = Some(*ts);
            }
            (TraceEvent::PhaseEnd { job, phase, ts }, Some(p)) if *job == jobid && *phase == p => {
                end = Some(*ts);
            }
            _ => {}
        }
    }
    match (start, end) {
        (Some(s), Some(e)) => {
            assert!(s <= e, "job {jobid} {phase:?}: span ends before it starts");
            (s, e)
        }
        _ => panic!("job {jobid} {phase:?}: unmatched span"),
    }
}

#[test]
fn trace_counter_snapshots_equal_metrics_report_exactly() {
    let (sink, out) = traced_run(None, Algorithm::AllReplicate);
    let snaps = counter_snapshots(&sink);
    assert_eq!(snaps.len(), out.report.num_jobs());
    for (snap, job) in snaps.iter().zip(&out.report.jobs) {
        // The snapshot is the exact JobMetrics appended to the report —
        // every field equal, wall clocks included.
        assert_eq!(snap.job_name, job.job_name);
        assert_eq!(snap.map_input_records, job.map_input_records);
        assert_eq!(snap.map_output_records, job.map_output_records);
        assert_eq!(snap.shuffle_bytes, job.shuffle_bytes);
        assert_eq!(snap.reduce_input_groups, job.reduce_input_groups);
        assert_eq!(snap.reduce_input_records, job.reduce_input_records);
        assert_eq!(snap.max_partition_records, job.max_partition_records);
        assert_eq!(snap.reduce_output_records, job.reduce_output_records);
        assert_eq!(snap.map_task_failures, job.map_task_failures);
        assert_eq!(snap.reduce_task_failures, job.reduce_task_failures);
        assert_eq!(snap.retries, job.retries);
        assert_eq!(snap.speculative_launched, job.speculative_launched);
        assert_eq!(snap.speculative_won, job.speculative_won);
        assert_eq!(snap.map_wall, job.map_wall);
        assert_eq!(snap.shuffle_wall, job.shuffle_wall);
        assert_eq!(snap.reduce_wall, job.reduce_wall);
        assert_eq!(snap.total_wall, job.total_wall);
    }
    // And the human-readable summary covers the same jobs.
    let table = out.report.phase_table();
    for job in &out.report.jobs {
        assert!(
            table.contains(&job.job_name),
            "{} missing from phase table",
            job.job_name
        );
    }
}

#[test]
fn chaos_retries_appear_as_distinct_attempt_spans() {
    let plan = FaultPlan::none().with_forced(vec![
        ForcedFault {
            phase: Phase::Map,
            task: 0,
            attempts: 1,
        },
        ForcedFault {
            phase: Phase::Reduce,
            task: 1,
            attempts: 2,
        },
    ]);
    // All-Replicate runs exactly one job, so the forced faults fire once.
    let (clean_sink, clean) = traced_run(None, Algorithm::AllReplicate);
    let (sink, faulty) = traced_run(Some(plan), Algorithm::AllReplicate);

    // Each retried task shows one span per attempt: the failed attempts
    // tagged with the injected-fault outcome, the final one succeeded.
    let outcomes = |events: &[TraceEvent], want_phase: Phase, want_task: usize| -> Vec<String> {
        let mut v: Vec<(u32, String)> = events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Attempt {
                    phase,
                    task,
                    attempt,
                    outcome,
                    ..
                } if *phase == want_phase && *task == want_task => {
                    Some((*attempt, outcome.tag().to_string()))
                }
                _ => None,
            })
            .collect();
        v.sort();
        assert_eq!(
            v.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
            (0..v.len() as u32).collect::<Vec<_>>(),
            "attempt numbers must be consecutive and distinct"
        );
        v.into_iter().map(|(_, o)| o).collect()
    };
    let events = sink.events();
    assert_eq!(
        outcomes(&events, Phase::Map, 0),
        ["injected-fault", "succeeded"]
    );
    assert_eq!(
        outcomes(&events, Phase::Reduce, 1),
        ["injected-fault", "injected-fault", "succeeded"]
    );
    assert_eq!(outcomes(&clean_sink.events(), Phase::Map, 0), ["succeeded"]);

    // The logical counters in the chaos trace are byte-identical to the
    // fault-free trace: retried attempts never double-count.
    let (c, f) = (
        &counter_snapshots(&clean_sink)[0],
        &counter_snapshots(&sink)[0],
    );
    assert_eq!(f.map_input_records, c.map_input_records);
    assert_eq!(f.map_output_records, c.map_output_records);
    assert_eq!(f.shuffle_bytes, c.shuffle_bytes);
    assert_eq!(f.reduce_input_groups, c.reduce_input_groups);
    assert_eq!(f.reduce_input_records, c.reduce_input_records);
    assert_eq!(f.reduce_output_records, c.reduce_output_records);
    assert_eq!(f.retries, 3);
    assert_eq!(faulty.tuples, clean.tuples);

    // Both exports stay well-formed under chaos.
    for line in sink.to_jsonl().lines() {
        validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    validate_json(&sink.to_chrome_trace()).unwrap();
}

#[test]
fn tracing_does_not_perturb_logical_counters() {
    let q = chain_query();
    let r1 = synthetic(1_000, 71);
    let r2 = synthetic(1_000, 72);
    let r3 = synthetic(1_000, 73);
    let run = |trace: TraceSink| {
        cluster_with(None)
            .submit(
                &JoinRun::new(&q, &[&r1, &r2, &r3])
                    .algorithm(Algorithm::ControlledReplicate)
                    .trace(trace),
            )
            .unwrap()
    };
    let untraced = run(TraceSink::disabled());
    let traced = run(TraceSink::recording());
    assert_eq!(traced.tuples, untraced.tuples);
    for (t, u) in traced.report.jobs.iter().zip(&untraced.report.jobs) {
        assert_eq!(t.map_output_records, u.map_output_records, "{}", t.job_name);
        assert_eq!(t.shuffle_bytes, u.shuffle_bytes, "{}", t.job_name);
        assert_eq!(
            t.reduce_output_records, u.reduce_output_records,
            "{}",
            t.job_name
        );
    }
    assert_eq!(traced.report.dfs_read_bytes, untraced.report.dfs_read_bytes);
}
