//! The metric counters the experiment tables are built from: job counts,
//! intermediate pair accounting, DFS traffic, and the invariants tying
//! them together.

use mwsj_core::{Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::SyntheticConfig;
use mwsj_geom::Rect;
use mwsj_query::Query;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::for_space(
        (0.0, 100_000.0),
        (0.0, 100_000.0),
        8,
    ))
}

fn workload() -> (Vec<Rect>, Vec<Rect>, Vec<Rect>) {
    (
        SyntheticConfig::paper_default(2_000, 1).generate(),
        SyntheticConfig::paper_default(2_000, 2).generate(),
        SyntheticConfig::paper_default(2_000, 3).generate(),
    )
}

#[test]
fn job_counts_per_algorithm() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();

    let all = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    assert_eq!(all.report.num_jobs(), 1, "All-Rep is a single round");

    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert_eq!(crep.report.num_jobs(), 2, "C-Rep runs two rounds");

    let cascade = cl.run(&q, &[&r1, &r2, &r3], Algorithm::TwoWayCascade);
    assert_eq!(
        cascade.report.num_jobs(),
        2,
        "a 2-triple chain cascades through two 2-way joins"
    );
}

#[test]
fn cascade_pays_dfs_traffic_others_pay_little() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();

    let cascade = cl.run(&q, &[&r1, &r2, &r3], Algorithm::TwoWayCascade);
    assert!(
        cascade.report.dfs_write_bytes > 0 && cascade.report.dfs_read_bytes > 0,
        "the cascade materializes intermediates on the DFS"
    );

    let all = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    assert_eq!(
        all.report.dfs_write_bytes, 0,
        "single-round: no DFS round trip"
    );

    // C-Rep materializes only the flagged rectangle stream (38 + 1 bytes
    // per rectangle), independent of the result size.
    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert_eq!(crep.report.dfs_write_bytes, 39 * 6_000);
}

#[test]
fn intermediate_pair_accounting_is_exact() {
    // Round-1 of C-Rep splits everything: the job's map-output count must
    // equal the sum of split-cell counts; round 2 must equal projections
    // plus replication targets, which the stats expose.
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);

    let expected_split: u64 = [&r1, &r2, &r3]
        .iter()
        .flat_map(|rel| rel.iter())
        .map(|r| cl.grid().split_cells(r).len() as u64)
        .sum();
    assert_eq!(out.report.jobs[0].map_output_records, expected_split);

    let unmarked = 6_000 - out.stats.rectangles_replicated;
    assert_eq!(
        out.report.jobs[1].map_output_records,
        out.stats.rectangles_after_replication + unmarked
    );
}

#[test]
fn all_rep_after_replication_matches_fourth_quadrants() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    let expected: u64 = [&r1, &r2, &r3]
        .iter()
        .flat_map(|rel| rel.iter())
        .map(|r| cl.grid().fourth_quadrant_cells(r).len() as u64)
        .sum();
    assert_eq!(out.stats.rectangles_after_replication, expected);
}

#[test]
fn shuffle_bytes_track_record_sizes() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    let j = &out.report.jobs[0];
    // Key u32 (4 bytes) + TaggedRect (38 bytes) per intermediate pair.
    assert_eq!(j.shuffle_bytes, j.map_output_records * 42);
}

#[test]
fn reduce_input_equals_map_output() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ra(100) R2 and R2 ra(100) R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
    for j in &out.report.jobs {
        assert_eq!(
            j.reduce_input_records, j.map_output_records,
            "{}",
            j.job_name
        );
        assert!(j.reduce_input_groups <= 64, "at most one group per cell");
    }
}

#[test]
fn metrics_reset_between_runs() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let first = cl.run(&q, &[&r1, &r2, &r3], Algorithm::TwoWayCascade);
    let second = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    // The second report must not contain the cascade's jobs or DFS bytes.
    assert_eq!(second.report.num_jobs(), 1);
    assert_eq!(second.report.dfs_write_bytes, 0);
    assert!(first.report.num_jobs() > 1);
}

#[test]
fn count_only_matches_collected_count() {
    use mwsj_core::JoinRun;
    let (r1, r2, r3) = workload();
    let cl = cluster();
    for q_text in [
        "R1 ov R2 and R2 ov R3",
        "R1 ra(150) R2 and R2 ra(150) R3",
        "R1 ov R2 and R2 ra(300) R3",
    ] {
        let q = Query::parse(q_text).unwrap();
        for alg in Algorithm::ALL {
            let collected = cl.run(&q, &[&r1, &r2, &r3], alg);
            let counted = cl
                .submit(&JoinRun::new(&q, &[&r1, &r2, &r3]).algorithm(alg).counting())
                .expect("fault-free run");
            assert_eq!(collected.tuple_count, collected.tuples.len() as u64);
            assert_eq!(
                counted.tuple_count,
                collected.tuple_count,
                "{} on {q_text}",
                alg.name()
            );
            assert!(counted.tuples.is_empty(), "counting mode must not collect");
            // The cost metrics must be unaffected by the output mode.
            assert_eq!(
                counted.stats.rectangles_after_replication,
                collected.stats.rectangles_after_replication
            );
        }
    }
}

#[test]
fn modeled_time_exceeds_compute_time() {
    use mwsj_core::mapreduce::CostModel;
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::TwoWayCascade);
    let model = CostModel::hadoop_2013();
    let modeled = out.report.modeled_time(&model);
    // At least the per-job overhead times the number of jobs.
    assert!(modeled >= model.per_job_overhead * out.report.num_jobs() as u32);
}

#[test]
fn planned_cascade_shrinks_intermediates_on_skewed_selectivity() {
    use mwsj_core::planner::optimize_cascade_order;
    // A-B joins heavily (big rectangles); B-C barely joins. The naive
    // order (A⋈B first) materializes a big intermediate; the planned order
    // starts with B⋈C and writes far less to the DFS.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let big = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(2_000, seed).with_max_sides(2_000.0, 2_000.0);
        cfg.x_range = (0.0, 100_000.0);
        cfg.y_range = (0.0, 100_000.0);
        cfg.generate()
    };
    let (a, b) = (big(1), big(2));
    let c: Vec<Rect> = (0..2_000)
        .map(|_| {
            use rand::Rng;
            Rect::new(
                rng.random_range(0.0..99_000.0),
                rng.random_range(10.0..100_000.0),
                5.0,
                5.0,
            )
        })
        .collect();
    let q = Query::parse("A ov B and B ov C").unwrap();
    let planned = optimize_cascade_order(&q, &[&a, &b, &c], 150, 7);
    // The planned first condition is the selective one.
    assert_eq!(q.name(planned.triples()[0].right), "C");

    let cl = cluster();
    let naive = cl.run(&q, &[&a, &b, &c], Algorithm::TwoWayCascade);
    let smart = cl.run(&planned, &[&a, &b, &c], Algorithm::TwoWayCascade);
    assert_eq!(naive.tuples, smart.tuples, "reordering preserves results");
    assert!(
        smart.report.dfs_write_bytes * 2 < naive.report.dfs_write_bytes,
        "planned {} vs naive {} DFS bytes",
        smart.report.dfs_write_bytes,
        naive.report.dfs_write_bytes
    );
}

#[test]
fn skew_metric_reports_hot_reducers() {
    // All data in one corner: one reducer takes nearly everything.
    let mut cfg = SyntheticConfig::paper_default(2_000, 9);
    cfg.x_range = (0.0, 10_000.0);
    cfg.y_range = (90_000.0, 100_000.0);
    let r1 = cfg.clone().generate();
    cfg.seed = 10;
    let r2 = cfg.generate();
    let q = Query::parse("R1 ov R2").unwrap();
    let cl = cluster();
    // C-Rep round 1 splits the relations: corner-concentrated data lands
    // almost entirely on one reducer. (All-Replicate would *hide* this
    // skew: a top-left corner rectangle is replicated to every cell.)
    let out = cl.run(&q, &[&r1, &r2], Algorithm::ControlledReplicate);
    let j = &out.report.jobs[0];
    // The hottest reducer holds far more than the 64-partition average.
    assert!(
        j.max_partition_records as f64 > 10.0 * (j.reduce_input_records as f64 / 64.0),
        "max {} vs total {}",
        j.max_partition_records,
        j.reduce_input_records
    );
}

#[test]
fn wall_times_are_populated() {
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let cl = cluster();
    let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert!(out.report.total_wall().as_nanos() > 0);
    for j in &out.report.jobs {
        assert!(j.total_wall >= j.map_wall);
        assert!(j.total_wall >= j.reduce_wall);
    }
}

#[test]
fn results_and_counts_independent_of_parallelism() {
    // The engine's thread counts must never affect results or the logical
    // counters (only wall times may differ).
    use mwsj_core::mapreduce::EngineConfig;
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ra(120) R3").unwrap();
    let mut baseline: Option<(Vec<Vec<u32>>, u64, u64)> = None;
    for threads in [1usize, 2, 8] {
        let cl = Cluster::new(
            ClusterConfig::for_space((0.0, 100_000.0), (0.0, 100_000.0), 8).with_engine(
                EngineConfig {
                    map_tasks: threads,
                    reduce_tasks: threads,
                    ..EngineConfig::default()
                },
            ),
        );
        let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
        let counts = (
            out.tuples,
            out.stats.rectangles_after_replication,
            out.report.total_intermediate_records(),
        );
        match &baseline {
            None => baseline = Some(counts),
            Some(b) => assert_eq!(&counts, b, "threads = {threads}"),
        }
    }
}

#[test]
fn concurrent_runs_share_one_cluster_safely() {
    // Several joins from different threads against separate clusters (an
    // Engine serves one run at a time; users run clusters per session).
    let (r1, r2, r3) = workload();
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let expected = {
        let cl = cluster();
        cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate)
            .tuples
    };
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let cl = cluster();
                let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
                assert_eq!(out.tuples, expected);
            });
        }
    });
}
