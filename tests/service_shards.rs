//! Sharded-serving equivalence: a server running `--shards N` must
//! answer stored map-side queries byte-identically to a single-node
//! server over the same stores — same tuples, same logical counters,
//! same fingerprint — including count-only runs, longer chains, and
//! under injected network chaos.

use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use mwsj_core::mapreduce::NetFaultPlan;
use mwsj_core::partition::Grid;
use mwsj_core::store::StoreBuilder;
use mwsj_server::json::{self, Json};
use mwsj_server::source::load_source;
use mwsj_server::{Client, ClientConfig, Server, ServerConfig};

/// The space every test server uses (the `ServerConfig` default).
const EXTENT: f64 = 100_000.0;

const A: &str = "synthetic:n=800,seed=11,extent=5000,lmax=300";
const B: &str = "synthetic:n=800,seed=12,extent=5000,lmax=300";
const C: &str = "synthetic:n=800,seed=13,extent=5000,lmax=300";

fn start(config: ServerConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn stop(addr: &str, handle: thread::JoinHandle<()>) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    handle.join().expect("server thread");
}

/// Ingests a synthetic source into an on-disk store on the service grid,
/// returning its path (unique per test + relation).
fn ingest(test: &str, name: &str, spec: &str) -> PathBuf {
    let rects = load_source(spec).expect("load source");
    let grid = Grid::square((0.0, EXTENT), (0.0, EXTENT), 8);
    let path = std::env::temp_dir().join(format!(
        "mwsj-shards-{}-{test}-{name}.store",
        std::process::id()
    ));
    StoreBuilder::new(&grid)
        .write(&rects, &path)
        .expect("ingest store");
    path
}

fn query_line(query: &str, data: &[(&str, String)], extra: &str) -> String {
    let bindings: Vec<String> = data
        .iter()
        .map(|(name, spec)| format!("\"{name}\":\"{spec}\""))
        .collect();
    format!(
        "{{\"op\":\"query\",\"query\":\"{query}\",\"data\":{{{}}}{extra}}}",
        bindings.join(",")
    )
}

/// Strips the serving artifacts (the physical wall clock and the
/// cache-hit flag), leaving every logical byte: `ok`, `algorithm`,
/// `tuple_count`, `tuples`, `counters` and `fingerprint` — the
/// "byte-identical" contract of sharded serving.
fn logical_bytes(response: &str) -> String {
    let response =
        response
            .replacen(",\"cached\":true", "", 1)
            .replacen(",\"cached\":false", "", 1);
    let cut = response
        .find(",\"wall_ms\":")
        .expect("response has wall_ms");
    let tail = response[cut..]
        .find(",\"fingerprint\":")
        .map(|i| &response[cut + i..])
        .expect("response has fingerprint");
    format!("{}{}", &response[..cut], tail)
}

/// Runs one query on both servers and asserts logical byte-identity.
fn assert_identical(single_addr: &str, sharded_addr: &str, line: &str) {
    let mut single = Client::connect(single_addr).expect("single connect");
    let mut sharded = Client::connect(sharded_addr).expect("sharded connect");
    let single_text = single.request(line).expect("single response");
    let sharded_text = sharded.request(line).expect("sharded response");
    let single_doc = json::parse(&single_text).expect("single json");
    assert_eq!(
        single_doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "single-node run must succeed: {single_text}"
    );
    assert_eq!(
        single_doc.get("algorithm").and_then(Json::as_str),
        Some("map-side"),
        "stored bindings must take the map-side path: {single_text}"
    );
    assert_eq!(
        logical_bytes(&single_text),
        logical_bytes(&sharded_text),
        "sharded response must be byte-identical outside wall_ms"
    );
}

#[test]
fn sharded_serving_is_byte_identical_to_single_node() {
    let store_a = ingest("pair", "a", A);
    let store_b = ingest("pair", "b", B);
    let data: Vec<(&str, String)> = vec![
        ("A", format!("store:{}", store_a.display())),
        ("B", format!("store:{}", store_b.display())),
    ];

    let (single_addr, single_h) = start(ServerConfig::default());
    let (sharded_addr, sharded_h) = start(ServerConfig::default().with_shards(4));

    // Materializing and count-only, and a within predicate: each pair of
    // responses must agree byte-for-byte outside the wall clock.
    for extra in ["", ",\"count_only\":true"] {
        assert_identical(
            &single_addr,
            &sharded_addr,
            &query_line("A ov B", &data, extra),
        );
        assert_identical(
            &single_addr,
            &sharded_addr,
            &query_line("A within 200 of B", &data, extra),
        );
    }

    // The sharded server reports its shard count.
    let mut c = Client::connect(&sharded_addr).expect("connect");
    let stats = json::parse(&c.request("{\"op\":\"stats\"}").expect("stats")).expect("json");
    assert_eq!(stats.get("shards").and_then(Json::as_f64), Some(4.0));

    stop(&single_addr, single_h);
    stop(&sharded_addr, sharded_h);
    std::fs::remove_file(store_a).ok();
    std::fs::remove_file(store_b).ok();
}

#[test]
fn three_relation_chain_shards_identically() {
    let store_a = ingest("chain", "a", A);
    let store_b = ingest("chain", "b", B);
    let store_c = ingest("chain", "c", C);
    let data: Vec<(&str, String)> = vec![
        ("A", format!("store:{}", store_a.display())),
        ("B", format!("store:{}", store_b.display())),
        ("C", format!("store:{}", store_c.display())),
    ];

    let (single_addr, single_h) = start(ServerConfig::default());
    // A shard count that does not divide the 64 cells evenly.
    let (sharded_addr, sharded_h) = start(ServerConfig::default().with_shards(7));

    assert_identical(
        &single_addr,
        &sharded_addr,
        &query_line("A ov B and B within 150 of C", &data, ""),
    );
    assert_identical(
        &single_addr,
        &sharded_addr,
        &query_line(
            "A ov B and B within 150 of C",
            &data,
            ",\"count_only\":true",
        ),
    );

    stop(&single_addr, single_h);
    stop(&sharded_addr, sharded_h);
    for p in [store_a, store_b, store_c] {
        std::fs::remove_file(p).ok();
    }
}

/// Sharded serving under injected network chaos: survivors (responses
/// that arrive intact) stay byte-identical to the clean single-node
/// answer; everything else is a typed error or a dead connection, never
/// a silently wrong result.
#[test]
fn sharded_chaos_survivors_match_the_clean_single_node_answer() {
    let store_a = ingest("chaos", "a", A);
    let store_b = ingest("chaos", "b", B);
    let data: Vec<(&str, String)> = vec![
        ("A", format!("store:{}", store_a.display())),
        ("B", format!("store:{}", store_b.display())),
    ];
    let line = query_line("A ov B", &data, "");

    let (single_addr, single_h) = start(ServerConfig::default());
    let clean = {
        let mut c = Client::connect(&single_addr).expect("connect");
        logical_bytes(&c.request(&line).expect("clean response"))
    };

    let (chaos_addr, chaos_h) = start(
        ServerConfig::default()
            .with_shards(4)
            .with_net_faults(NetFaultPlan::chaos(7001, 0.04)),
    );

    let mut survivors = 0usize;
    for seed in 0..12u64 {
        let config = ClientConfig::default()
            .with_read_timeout(Duration::from_secs(30))
            .with_seed(seed);
        let Ok(mut c) = Client::with_config(&chaos_addr, config) else {
            continue;
        };
        let Ok(text) = c.request(&line) else {
            continue; // casualty: typed client error or dead connection
        };
        let doc = json::parse(&text).expect("intact responses parse");
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            continue; // casualty: a corrupted request byte, shed, etc.
        }
        assert_eq!(
            logical_bytes(&text),
            clean,
            "chaos survivor must match the clean single-node answer"
        );
        survivors += 1;
    }
    assert!(
        survivors >= 1,
        "a 4% fault rate over 12 attempts must leave survivors"
    );

    stop(&single_addr, single_h);
    // The chaos server's shutdown may need several tries.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !chaos_h.is_finished() {
        if let Ok(mut c) = Client::connect(&chaos_addr) {
            let _ = c.request("{\"op\":\"shutdown\"}");
        }
        assert!(std::time::Instant::now() < deadline, "server did not stop");
        thread::sleep(Duration::from_millis(50));
    }
    chaos_h.join().expect("server thread");
    std::fs::remove_file(store_a).ok();
    std::fs::remove_file(store_b).ok();
}
