//! The central correctness property of the whole system: every distributed
//! algorithm — 2-way Cascade, All-Replicate, Controlled-Replicate, C-Rep-L
//! and the Shares-style hypercube — computes **exactly** the tuples of the
//! in-memory reference join, on every query shape, including inputs
//! engineered to sit on partition-cell boundaries. The cost-based planner
//! behind `Algorithm::Auto` is pinned here too: its decisions are a pure
//! function of the inputs, so they golden-test like any other output.

use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig};
use mwsj_geom::Rect;
use mwsj_query::Query;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPACE: (f64, f64) = (0.0, 1000.0);

fn cluster(side: u32) -> Cluster {
    Cluster::new(ClusterConfig::for_space(SPACE, SPACE, side))
}

fn random_relation(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..SPACE.1);
            let y = rng.random_range(0.0..SPACE.1);
            let l = rng.random_range(0.0..max_side).min(SPACE.1 - x);
            let b = rng.random_range(0.0..max_side).min(y);
            Rect::new(x, y, l, b)
        })
        .collect()
}

/// Coordinates snapped to multiples of `grid_step / 2`, so rectangle edges
/// frequently coincide with cell boundaries — the adversarial case for the
/// half-open routing and designated-cell rules.
fn boundary_relation(n: usize, seed: u64, grid_step: f64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let snap = grid_step / 2.0;
    let slots = (SPACE.1 / snap) as u64;
    (0..n)
        .map(|_| {
            let x = rng.random_range(0..slots) as f64 * snap;
            let y = rng.random_range(1..=slots) as f64 * snap;
            let l = (rng.random_range(0..=4) as f64 * snap).min(SPACE.1 - x);
            let b = (rng.random_range(0..=4) as f64 * snap).min(y);
            Rect::new(x, y, l, b)
        })
        .collect()
}

fn check_all(query: &Query, relations: &[&[Rect]], side: u32) {
    let expected = reference::in_memory_join(query, relations);
    let cl = cluster(side);
    for alg in Algorithm::ALL {
        let got = cl.run(query, relations, alg);
        assert_eq!(
            got.tuples,
            expected,
            "{} deviates from the reference ({} vs {} tuples)",
            alg.name(),
            got.tuples.len(),
            expected.len()
        );
    }
}

#[test]
fn overlap_chain3_random() {
    // The paper's Q2 = R1 Ov R2 and R2 Ov R3.
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let r1 = random_relation(250, 10, 30.0);
    let r2 = random_relation(250, 11, 30.0);
    let r3 = random_relation(250, 12, 30.0);
    check_all(&q, &[&r1, &r2, &r3], 8);
}

#[test]
fn overlap_chain4_random() {
    // The paper's Q1 = chain of four relations.
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let rels: Vec<Vec<Rect>> = (0..4).map(|i| random_relation(120, 20 + i, 40.0)).collect();
    let refs: Vec<&[Rect]> = rels.iter().map(Vec::as_slice).collect();
    check_all(&q, &refs, 4);
}

#[test]
fn range_chain3_random() {
    // The paper's Q3 = R1 Ra(d) R2 and R2 Ra(d) R3.
    let q = Query::parse("R1 ra(25) R2 and R2 ra(25) R3").unwrap();
    let r1 = random_relation(150, 30, 15.0);
    let r2 = random_relation(150, 31, 15.0);
    let r3 = random_relation(150, 32, 15.0);
    check_all(&q, &[&r1, &r2, &r3], 8);
}

#[test]
fn hybrid_chain3_random() {
    // The paper's Q4 = R1 Ov R2 and R2 Ra(d) R3.
    let q = Query::parse("R1 ov R2 and R2 ra(40) R3").unwrap();
    let r1 = random_relation(180, 40, 25.0);
    let r2 = random_relation(180, 41, 25.0);
    let r3 = random_relation(180, 42, 25.0);
    check_all(&q, &[&r1, &r2, &r3], 8);
}

#[test]
fn star_query_random() {
    let q = Query::parse("C ov L1 and C ov L2 and C ov L3").unwrap();
    let c = random_relation(100, 50, 50.0);
    let l1 = random_relation(100, 51, 50.0);
    let l2 = random_relation(100, 52, 50.0);
    let l3 = random_relation(100, 53, 50.0);
    check_all(&q, &[&c, &l1, &l2, &l3], 4);
}

#[test]
fn cyclic_query_random() {
    // A triangle query exercises the cycle paths (cascade filter stage,
    // cyclic arc-consistency marking).
    let q = Query::parse("A ov B and B ov C and C ov A").unwrap();
    let a = random_relation(150, 60, 60.0);
    let b = random_relation(150, 61, 60.0);
    let c = random_relation(150, 62, 60.0);
    check_all(&q, &[&a, &b, &c], 4);
}

#[test]
fn self_join_star() {
    // The paper's Q2s = R Ov R and R Ov R over one dataset bound to three
    // positions.
    let q = Query::parse("Ra ov Rb and Rb ov Rc").unwrap();
    let r = random_relation(200, 70, 35.0);
    check_all(&q, &[&r, &r, &r], 8);
}

#[test]
fn boundary_aligned_overlap_chain() {
    // 8 cells over [0, 1000] => boundaries at multiples of 125; snap
    // coordinates to multiples of 62.5 so edges land on boundaries.
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let r1 = boundary_relation(150, 80, 125.0);
    let r2 = boundary_relation(150, 81, 125.0);
    let r3 = boundary_relation(150, 82, 125.0);
    check_all(&q, &[&r1, &r2, &r3], 8);
}

#[test]
fn boundary_aligned_range_chain() {
    let q = Query::parse("R1 ra(62.5) R2 and R2 ra(62.5) R3").unwrap();
    let r1 = boundary_relation(100, 90, 125.0);
    let r2 = boundary_relation(100, 91, 125.0);
    let r3 = boundary_relation(100, 92, 125.0);
    check_all(&q, &[&r1, &r2, &r3], 8);
}

#[test]
fn degenerate_rectangles_points_and_lines() {
    // Zero-width/zero-height rectangles (points, segments) are legal MBRs
    // of point/line spatial objects.
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let mut rng = StdRng::seed_from_u64(100);
    let mk = |rng: &mut StdRng| {
        let x = rng.random_range(0.0..900.0);
        let y = rng.random_range(100.0..1000.0);
        match rng.random_range(0..3) {
            0 => Rect::new(x, y, 0.0, 0.0),
            1 => Rect::new(x, y, rng.random_range(0.0..80.0), 0.0),
            _ => Rect::new(x, y, 0.0, rng.random_range(0.0..80.0)),
        }
    };
    let r1: Vec<Rect> = (0..150).map(|_| mk(&mut rng)).collect();
    let r2: Vec<Rect> = (0..150).map(|_| mk(&mut rng)).collect();
    let r3: Vec<Rect> = (0..150).map(|_| mk(&mut rng)).collect();
    check_all(&q, &[&r1, &r2, &r3], 4);
}

#[test]
fn empty_relation_yields_empty_output() {
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let r1 = random_relation(50, 110, 40.0);
    let empty: Vec<Rect> = Vec::new();
    let r3 = random_relation(50, 111, 40.0);
    let expected = reference::in_memory_join(&q, &[&r1, &empty, &r3]);
    assert!(expected.is_empty());
    check_all(&q, &[&r1, &empty, &r3], 4);
}

#[test]
fn single_cell_grid_degenerates_to_local_join() {
    let q = Query::parse("R1 ov R2").unwrap();
    let r1 = random_relation(100, 120, 50.0);
    let r2 = random_relation(100, 121, 50.0);
    check_all(&q, &[&r1, &r2], 1);
}

#[test]
fn two_way_overlap_and_range() {
    let q_ov = Query::parse("R1 ov R2").unwrap();
    let q_ra = Query::parse("R1 ra(30) R2").unwrap();
    let r1 = random_relation(300, 130, 25.0);
    let r2 = random_relation(300, 131, 25.0);
    check_all(&q_ov, &[&r1, &r2], 8);
    check_all(&q_ra, &[&r1, &r2], 8);
}

#[test]
fn crep_communicates_less_than_all_rep() {
    // The headline claim: C-Rep's intermediate pair count is far below
    // All-Rep's on uniform data.
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let r1 = random_relation(400, 140, 10.0);
    let r2 = random_relation(400, 141, 10.0);
    let r3 = random_relation(400, 142, 10.0);
    let cl = cluster(8);
    let all = cl.run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert_eq!(all.tuples, crep.tuples);
    assert!(
        crep.stats.rectangles_after_replication * 4 < all.stats.rectangles_after_replication,
        "C-Rep {} vs All-Rep {}",
        crep.stats.rectangles_after_replication,
        all.stats.rectangles_after_replication
    );
    assert!(crep.stats.rectangles_replicated < all.stats.rectangles_replicated);
}

#[test]
fn crep_l_communicates_no_more_than_crep() {
    let q = Query::parse("R1 ra(50) R2 and R2 ra(50) R3").unwrap();
    let r1 = random_relation(300, 150, 10.0);
    let r2 = random_relation(300, 151, 10.0);
    let r3 = random_relation(300, 152, 10.0);
    let cl = cluster(8);
    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let crepl = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
    assert_eq!(crep.tuples, crepl.tuples);
    // Same rectangles are marked; only the replication extent differs.
    assert_eq!(
        crep.stats.rectangles_replicated,
        crepl.stats.rectangles_replicated
    );
    assert!(crepl.stats.rectangles_after_replication <= crep.stats.rectangles_after_replication);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_all_algorithms_agree_on_small_boundary_heavy_inputs(
        seed in 0u64..10_000,
        n1 in 1usize..40,
        n2 in 1usize..40,
        n3 in 1usize..40,
        d in 0.0..80.0f64,
        overlap_first in proptest::bool::ANY,
    ) {
        let r1 = boundary_relation(n1, seed, 250.0);
        let r2 = boundary_relation(n2, seed.wrapping_add(1), 250.0);
        let r3 = boundary_relation(n3, seed.wrapping_add(2), 250.0);
        let q = if overlap_first {
            Query::builder().overlap("R1", "R2").range("R2", "R3", d).build().unwrap()
        } else {
            Query::builder().range("R1", "R2", d).overlap("R2", "R3").build().unwrap()
        };
        let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
        let cl = cluster(4);
        for alg in Algorithm::ALL {
            let got = cl.run(&q, &[&r1, &r2, &r3], alg);
            prop_assert_eq!(
                &got.tuples, &expected,
                "{} deviates on seed {}", alg.name(), seed
            );
        }
    }
}

/// The reducer-side join kernel (PR 5) must be invisible in every
/// communication counter: replication and shuffle are decided map-side,
/// and the kernel emits exactly the tuples the old recursive matcher did.
/// The goldens below were captured by running this exact workload against
/// the pre-kernel recursive matcher; the kernel build must reproduce them
/// byte for byte — including `reduce_output_records`, which counts the
/// reduce-side emissions themselves.
#[test]
fn kernel_reducers_leave_communication_counters_unchanged() {
    let q = Query::parse("R1 ov R2 and R2 ra(40) R3").unwrap();
    let r1 = random_relation(250, 10, 30.0);
    let r2 = random_relation(250, 11, 30.0);
    let r3 = random_relation(250, 12, 30.0);
    let cl = cluster(8);

    // Per-job (map_output_records, shuffle_bytes, reduce_input_groups,
    // reduce_output_records).
    type JobCounters = (u64, u64, u64, u64);
    let golden: [(Algorithm, &[JobCounters]); 4] = [
        (
            Algorithm::TwoWayCascade,
            &[(606, 26_362, 64, 58), (461, 25_373, 64, 152)],
        ),
        (Algorithm::AllReplicate, &[(14_739, 619_038, 64, 152)]),
        (
            Algorithm::ControlledReplicate,
            &[(917, 38_514, 64, 750), (8_660, 363_720, 64, 152)],
        ),
        (
            Algorithm::ControlledReplicateLimit,
            &[(917, 38_514, 64, 750), (1_732, 72_744, 64, 152)],
        ),
    ];

    for (alg, jobs) in golden {
        let out = cl.run(&q, &[&r1, &r2, &r3], alg);
        assert_eq!(out.tuples.len(), 152, "{}", alg.name());
        assert_eq!(out.report.jobs.len(), jobs.len(), "{}", alg.name());
        for (j, want) in out.report.jobs.iter().zip(jobs) {
            let got = (
                j.map_output_records,
                j.shuffle_bytes,
                j.reduce_input_groups,
                j.reduce_output_records,
            );
            assert_eq!(got, *want, "{} job {}", alg.name(), j.job_name);
        }
    }
}

/// The kernel's per-thread scratch must survive the engine's fault
/// machinery: retried and speculative reduce attempts re-enter
/// `JoinKernel::execute` on the same worker threads, and committed output
/// and logical counters must match the fault-free run exactly.
#[test]
fn kernel_reducers_are_exact_under_fault_injection() {
    use mwsj_core::mapreduce::FaultPlan;

    let q = Query::parse("R1 ov R2 and R2 ra(40) R3").unwrap();
    let r1 = random_relation(250, 10, 30.0);
    let r2 = random_relation(250, 11, 30.0);
    let r3 = random_relation(250, 12, 30.0);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);

    let mut config = ClusterConfig::for_space(SPACE, SPACE, 8);
    config.engine.map_tasks = 4;
    config.engine.reduce_tasks = 4;
    let clean = Cluster::new(config.clone());

    let mut faulty_config = config;
    faulty_config.engine.fault_plan = Some(FaultPlan::chaos(23, 0.2, 0.05).with_max_attempts(8));
    let faulty = Cluster::new(faulty_config);

    for alg in [
        Algorithm::AllReplicate,
        Algorithm::ControlledReplicate,
        Algorithm::Hypercube,
    ] {
        let a = clean.run(&q, &[&r1, &r2, &r3], alg);
        let b = faulty.run(&q, &[&r1, &r2, &r3], alg);
        assert_eq!(a.tuples, expected, "{} (clean)", alg.name());
        assert_eq!(b.tuples, expected, "{} (faulty)", alg.name());
        for (ja, jb) in a.report.jobs.iter().zip(&b.report.jobs) {
            assert_eq!(
                ja.map_output_records, jb.map_output_records,
                "{}",
                ja.job_name
            );
            assert_eq!(ja.shuffle_bytes, jb.shuffle_bytes, "{}", ja.job_name);
            assert_eq!(
                ja.reduce_output_records, jb.reduce_output_records,
                "{}",
                ja.job_name
            );
        }
    }
}

/// The stored map-side join must be a perfect stand-in for the shuffle
/// algorithms: identical tuples on every query shape (including
/// boundary-aligned and degenerate inputs), and — pinned against the
/// All-Rep golden above — identical logical output counters. Map-side
/// moves nothing, so its communication counters are *genuinely* zero, but
/// the tuple count, the designated-cell group count and the per-cell
/// attribution must match what the shuffle reducers commit.
#[test]
fn map_side_matches_shuffle_algorithms_and_golden_counters() {
    use mwsj_core::store::{StoreBuilder, StoredDataset};
    use mwsj_core::StoredRun;

    let q = Query::parse("R1 ov R2 and R2 ra(40) R3").unwrap();
    let r1 = random_relation(250, 10, 30.0);
    let r2 = random_relation(250, 11, 30.0);
    let r3 = random_relation(250, 12, 30.0);
    let cl = cluster(8);

    let builder = StoreBuilder::new(cl.grid());
    let stores: Vec<StoredDataset> = [&r1, &r2, &r3]
        .iter()
        .map(|rel| StoredDataset::from_bytes(&builder.build(rel).unwrap()).unwrap())
        .collect();
    let refs: Vec<&StoredDataset> = stores.iter().collect();

    // Auto on stored co-partitioned inputs resolves to map-side.
    let plan = cl.plan_stored(&q, &refs);
    assert_eq!(plan.algorithm, Algorithm::MapSide, "{}", plan.to_json());

    let out = cl.submit_stored(&StoredRun::new(&q, &refs)).unwrap();
    assert_eq!(out.algorithm, Algorithm::MapSide);
    assert_eq!(out.tuples, reference::in_memory_join(&q, &[&r1, &r2, &r3]));
    assert_eq!(out.tuples.len(), 152);

    // Counter pin against the All-Rep golden of the same workload: one
    // synthetic job, zero communication, and the same committed output
    // count (152). Map-side groups count designated cells that actually
    // commit tuples (31 of the 64 occupied reducer groups All-Rep sees).
    assert_eq!(out.report.jobs.len(), 1);
    let j = &out.report.jobs[0];
    assert_eq!(j.job_name, "map-side");
    assert_eq!(j.map_input_records, 750);
    assert_eq!(j.map_output_records, 0);
    assert_eq!(j.shuffle_bytes, 0);
    assert_eq!(j.reduce_input_groups, 31);
    assert_eq!(j.reduce_output_records, 152);

    // A pinned shuffle algorithm over the same stores materializes and
    // reproduces its golden counters exactly (byte-identical fallback).
    let all_rep = cl
        .submit_stored(&StoredRun::new(&q, &refs).algorithm(Algorithm::AllReplicate))
        .unwrap();
    assert_eq!(all_rep.tuples, out.tuples);
    let j = &all_rep.report.jobs[0];
    assert_eq!(
        (
            j.map_output_records,
            j.shuffle_bytes,
            j.reduce_input_groups,
            j.reduce_output_records
        ),
        (14_739, 619_038, 64, 152)
    );

    // Count-only mode reports the same tuple count without materializing.
    let counted = cl
        .submit_stored(&StoredRun::new(&q, &refs).counting())
        .unwrap();
    assert_eq!(counted.tuple_count, 152);
    assert!(counted.tuples.is_empty());
}

/// Map-side over every equivalence workload shape: stored joins agree
/// with the reference on boundary-heavy, degenerate and self-join inputs.
#[test]
fn map_side_agrees_with_reference_on_adversarial_shapes() {
    use mwsj_core::store::{StoreBuilder, StoredDataset};
    use mwsj_core::StoredRun;

    let cases: Vec<(Query, Vec<Vec<Rect>>, u32)> = vec![
        (
            Query::parse("R1 ov R2 and R2 ov R3").unwrap(),
            vec![
                boundary_relation(150, 80, 125.0),
                boundary_relation(150, 81, 125.0),
                boundary_relation(150, 82, 125.0),
            ],
            8,
        ),
        (
            Query::parse("R1 ra(62.5) R2 and R2 ra(62.5) R3").unwrap(),
            vec![
                boundary_relation(100, 90, 125.0),
                boundary_relation(100, 91, 125.0),
                boundary_relation(100, 92, 125.0),
            ],
            8,
        ),
        (
            Query::parse("A ov B and B ov C and C ov A").unwrap(),
            vec![
                random_relation(150, 60, 60.0),
                random_relation(150, 61, 60.0),
                random_relation(150, 62, 60.0),
            ],
            4,
        ),
        (
            Query::parse("Ra ov Rb and Rb ov Rc").unwrap(),
            vec![
                random_relation(200, 70, 35.0),
                random_relation(200, 70, 35.0),
                random_relation(200, 70, 35.0),
            ],
            8,
        ),
        (
            Query::parse("R1 ov R2 and R2 ov R3").unwrap(),
            vec![
                random_relation(50, 110, 40.0),
                Vec::new(),
                random_relation(50, 111, 40.0),
            ],
            4,
        ),
    ];
    for (q, rels, side) in cases {
        let refs_mem: Vec<&[Rect]> = rels.iter().map(Vec::as_slice).collect();
        let expected = reference::in_memory_join(&q, &refs_mem);
        let cl = cluster(side);
        let builder = StoreBuilder::new(cl.grid());
        let stores: Vec<StoredDataset> = rels
            .iter()
            .map(|rel| StoredDataset::from_bytes(&builder.build(rel).unwrap()).unwrap())
            .collect();
        let refs: Vec<&StoredDataset> = stores.iter().collect();
        let out = cl
            .submit_stored(&StoredRun::new(&q, &refs).algorithm(Algorithm::MapSide))
            .unwrap();
        assert_eq!(out.tuples, expected, "{q} on a {side}x{side} grid");
    }
}

/// Golden planner decisions over a Table 2-style size sweep. The plan is a
/// pure function of `(query, relations, grid, reducers)` — fixed sampling
/// seed, deterministic share enumeration, stable candidate sort — so these
/// pins hold on every platform. They also document the cost model's
/// regimes: tiny inputs take the single-round hypercube (per-job overhead
/// dominates), mid sizes the cascade (small intermediates), large sizes
/// C-Rep-L (the cascade's intermediates outgrow the marked replication).
/// If a deliberate cost-model change moves a boundary, re-pin and say why.
#[test]
fn planner_decisions_are_pinned() {
    let cl = cluster(8);
    let q2 = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let q2_golden = [
        (20usize, Algorithm::Hypercube),
        (200, Algorithm::TwoWayCascade),
        (1000, Algorithm::TwoWayCascade),
        (4000, Algorithm::ControlledReplicateLimit),
    ];
    for (n, want) in q2_golden {
        let r1 = random_relation(n, 10, 30.0);
        let r2 = random_relation(n, 11, 30.0);
        let r3 = random_relation(n, 12, 30.0);
        let p = cl.plan(&q2, &[&r1, &r2, &r3]);
        assert_eq!(p.algorithm, want, "q2 n={n}: {}", p.to_json());
        assert_eq!(p.shares.as_deref(), Some(&[4, 4, 4][..]), "q2 n={n}");
    }

    let q3 = Query::parse("R1 ra(25) R2 and R2 ra(25) R3").unwrap();
    for (n, want) in [
        (200usize, Algorithm::TwoWayCascade),
        (2000, Algorithm::ControlledReplicateLimit),
    ] {
        let r1 = random_relation(n, 30, 15.0);
        let r2 = random_relation(n, 31, 15.0);
        let r3 = random_relation(n, 32, 15.0);
        let p = cl.plan(&q3, &[&r1, &r2, &r3]);
        assert_eq!(p.algorithm, want, "q3 n={n}: {}", p.to_json());
    }

    // Skewed two-way: the share vector must follow the size imbalance
    // (all the budget goes to the dominant relation's dimension).
    let qs = Query::parse("A ov B").unwrap();
    let a = random_relation(3000, 40, 30.0);
    let b = random_relation(30, 41, 30.0);
    let p = cl.plan(&qs, &[&a, &b]);
    assert_eq!(p.shares.as_deref(), Some(&[64, 1][..]), "{}", p.to_json());
}

/// `Algorithm::Auto` must be byte-identical to manually pinning the
/// algorithm the planner chose — same tuples, same shuffle counters. This
/// is what lets the server canonicalize its cache key to the concrete
/// algorithm: an auto query and its pinned twin share one entry.
#[test]
fn auto_runs_identical_to_pinned_choice() {
    let q = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    for n in [20usize, 1000, 4000] {
        let r1 = random_relation(n, 10, 30.0);
        let r2 = random_relation(n, 11, 30.0);
        let r3 = random_relation(n, 12, 30.0);
        let cl = cluster(8);
        let auto = cl.run(&q, &[&r1, &r2, &r3], Algorithm::Auto);
        assert_ne!(auto.algorithm, Algorithm::Auto);
        assert_eq!(auto.algorithm, cl.plan(&q, &[&r1, &r2, &r3]).algorithm);
        let pinned = cl.run(&q, &[&r1, &r2, &r3], auto.algorithm);
        assert_eq!(auto.tuples, pinned.tuples, "n={n}");
        assert_eq!(
            auto.tuples,
            reference::in_memory_join(&q, &[&r1, &r2, &r3]),
            "n={n}"
        );
        for (ja, jb) in auto.report.jobs.iter().zip(&pinned.report.jobs) {
            assert_eq!(ja.map_output_records, jb.map_output_records, "n={n}");
            assert_eq!(ja.shuffle_bytes, jb.shuffle_bytes, "n={n}");
        }
    }
}

#[test]
fn virtual_cells_on_fewer_reducers_stay_correct() {
    // A 16x16 logical grid hashed onto 10 physical reducers (the standard
    // skew mitigation): results must be unchanged, and every key still
    // meets at one reducer.
    let q = Query::parse("R1 ov R2 and R2 ra(40) R3").unwrap();
    let r1 = random_relation(200, 160, 30.0);
    let r2 = random_relation(200, 161, 30.0);
    let r3 = random_relation(200, 162, 30.0);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
    let cl = Cluster::new(ClusterConfig::for_space(SPACE, SPACE, 16).with_reducers(10));
    assert_eq!(cl.num_reducers(), 10);
    for alg in Algorithm::ALL {
        let got = cl.run(&q, &[&r1, &r2, &r3], alg);
        assert_eq!(got.tuples, expected, "{}", alg.name());
    }
}
