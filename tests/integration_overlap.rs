//! Multi-way **overlap** joins end-to-end (§7): the workload trends behind
//! Tables 2-4, exercised at test scale through the public API.

use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::{enlarge_all, CaliforniaConfig, SyntheticConfig};
use mwsj_geom::Rect;
use mwsj_query::Query;

fn q2() -> Query {
    Query::parse("R1 ov R2 and R2 ov R3").unwrap()
}

fn paper_cluster() -> Cluster {
    // The paper's 8x8 grid of 64 reducers over the synthetic space.
    Cluster::new(ClusterConfig::for_space(
        (0.0, 100_000.0),
        (0.0, 100_000.0),
        8,
    ))
}

fn synthetic(n: usize, seed: u64) -> Vec<Rect> {
    SyntheticConfig::paper_default(n, seed).generate()
}

#[test]
fn table2_trend_output_grows_with_dataset_size() {
    // Table 2 varies nI; more rectangles => more overlapping triples and
    // more rectangles marked for replication. The space shrinks relative
    // to the paper's 100K² so the scaled-down nI keeps the paper's join
    // selectivity (density scales with n · (side/extent)²).
    let cl = Cluster::new(ClusterConfig::for_space(
        (0.0, 20_000.0),
        (0.0, 20_000.0),
        8,
    ));
    let q = q2();
    let mut last_tuples = 0;
    let mut last_marked = 0;
    for (i, n) in [2_000usize, 8_000].into_iter().enumerate() {
        let gen = |seed| {
            let mut cfg = SyntheticConfig::paper_default(n, seed);
            cfg.x_range = (0.0, 20_000.0);
            cfg.y_range = (0.0, 20_000.0);
            cfg.generate()
        };
        let (r1, r2, r3) = (
            gen(100 + i as u64),
            gen(200 + i as u64),
            gen(300 + i as u64),
        );
        let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
        assert_eq!(
            out.tuples,
            reference::in_memory_join(&q, &[&r1, &r2, &r3]),
            "C-Rep correctness at n = {n}"
        );
        assert!(out.tuples.len() >= last_tuples);
        assert!(out.stats.rectangles_replicated >= last_marked);
        last_tuples = out.tuples.len();
        last_marked = out.stats.rectangles_replicated;
    }
    assert!(last_tuples > 0, "the largest workload must produce output");
}

#[test]
fn table3_trend_larger_rectangles_mark_more() {
    // Table 3 varies l_max/b_max at fixed nI: larger rectangles cross
    // cells more often, so C-Rep marks more rectangles and the output
    // grows.
    let cl = paper_cluster();
    let q = q2();
    let mut marked = Vec::new();
    let mut outputs = Vec::new();
    for l_max in [100.0, 500.0] {
        let gen = |seed| {
            SyntheticConfig::paper_default(4_000, seed)
                .with_max_sides(l_max, l_max)
                .generate()
        };
        let (r1, r2, r3) = (gen(11), gen(12), gen(13));
        let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
        assert_eq!(
            out.tuples,
            reference::in_memory_join(&q, &[&r1, &r2, &r3]),
            "l_max = {l_max}"
        );
        marked.push(out.stats.rectangles_replicated);
        outputs.push(out.tuples.len());
    }
    assert!(marked[1] > marked[0], "marked: {marked:?}");
    assert!(outputs[1] > outputs[0], "outputs: {outputs:?}");
}

#[test]
fn table4_california_star_self_join_with_enlargement() {
    // Table 4: Q2s = R Ov R and R Ov R over California-like road MBBs,
    // enlarged by factor k. Larger k => more overlaps => more marked and a
    // bigger output.
    let cl = Cluster::new(ClusterConfig::for_space(
        (0.0, 63_000.0),
        (0.0, 100_000.0),
        8,
    ));
    let q = Query::parse("Ra ov Rb and Rb ov Rc").unwrap();
    let base = CaliforniaConfig::new(4_000, 2013).generate();
    let space = Rect::new(0.0, 100_000.0, 63_000.0, 100_000.0);

    let mut marked = Vec::new();
    let mut outputs = Vec::new();
    for k in [1.0, 2.0] {
        let data = enlarge_all(&base, k, &space);
        let out = cl.run(
            &q,
            &[&data, &data, &data],
            Algorithm::ControlledReplicateLimit,
        );
        assert_eq!(
            out.tuples,
            reference::in_memory_join(&q, &[&data, &data, &data]),
            "k = {k}"
        );
        marked.push(out.stats.rectangles_replicated);
        outputs.push(out.tuples.len());
    }
    assert!(outputs[1] > outputs[0], "outputs: {outputs:?}");
    assert!(marked[1] >= marked[0], "marked: {marked:?}");
}

#[test]
fn self_join_output_contains_reflexive_triples() {
    // A star self-join over one dataset must report (r, r, r) for every
    // rectangle r (each rectangle overlaps itself).
    let cl = paper_cluster();
    let q = Query::parse("Ra ov Rb and Rb ov Rc").unwrap();
    let r = synthetic(500, 77);
    let out = cl.run(&q, &[&r, &r, &r], Algorithm::ControlledReplicate);
    for id in 0..r.len() as u32 {
        assert!(out.tuples.contains(&vec![id, id, id]));
    }
}

#[test]
fn skewed_data_still_correct() {
    // Heavy spatial skew: all three relations concentrate in the top-left
    // 4% of the space, overloading a few reducers while most stay idle.
    let cl = paper_cluster();
    let q = q2();
    let gen = |seed| {
        let mut cfg = SyntheticConfig::paper_default(2_000, seed);
        cfg.x_range = (0.0, 20_000.0);
        cfg.y_range = (80_000.0, 100_000.0);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(5), gen(6), gen(7));
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
    assert!(!expected.is_empty(), "clustered data should collide");
    for alg in [Algorithm::AllReplicate, Algorithm::ControlledReplicate] {
        let out = cl.run(&q, &[&r1, &r2, &r3], alg);
        assert_eq!(out.tuples, expected, "{}", alg.name());
    }
}
