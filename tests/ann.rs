//! The all-nearest-neighbor join (§10 future work): the distributed
//! three-round ANN must match the brute-force reference exactly, including
//! ties, empty cells and clustered data.

use mwsj_core::ann::{ann_brute_force, ann_join};
use mwsj_core::{Cluster, ClusterConfig};
use mwsj_geom::Rect;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPACE: (f64, f64) = (0.0, 1000.0);

fn cluster(side: u32) -> Cluster {
    Cluster::new(ClusterConfig::for_space(SPACE, SPACE, side))
}

fn relation(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..980.0);
            let y = rng.random_range(20.0..1000.0);
            Rect::new(
                x,
                y,
                rng.random_range(0.0..20.0),
                rng.random_range(0.0..20.0),
            )
        })
        .collect()
}

#[test]
fn matches_brute_force_random() {
    let outer = relation(300, 1);
    let inner = relation(300, 2);
    let cl = cluster(8);
    assert_eq!(
        ann_join(&cl, &outer, &inner),
        ann_brute_force(&outer, &inner)
    );
}

#[test]
fn matches_brute_force_sparse_inner() {
    // Few inner rectangles: most cells are empty and round 1 falls back to
    // the space diagonal, exercising the wide re-route.
    let outer = relation(200, 3);
    let inner = relation(3, 4);
    let cl = cluster(8);
    assert_eq!(
        ann_join(&cl, &outer, &inner),
        ann_brute_force(&outer, &inner)
    );
}

#[test]
fn matches_brute_force_clustered_far_apart() {
    // Outer in one corner, inner in the opposite corner: every NN is far.
    let mut rng = StdRng::seed_from_u64(5);
    let outer: Vec<Rect> = (0..150)
        .map(|_| {
            Rect::new(
                rng.random_range(0.0..100.0),
                rng.random_range(900.0..1000.0),
                5.0,
                5.0,
            )
        })
        .collect();
    let inner: Vec<Rect> = (0..150)
        .map(|_| {
            Rect::new(
                rng.random_range(890.0..990.0),
                rng.random_range(20.0..110.0),
                5.0,
                5.0,
            )
        })
        .collect();
    let cl = cluster(8);
    assert_eq!(
        ann_join(&cl, &outer, &inner),
        ann_brute_force(&outer, &inner)
    );
}

#[test]
fn overlapping_rectangles_have_distance_zero_nn() {
    // Ties at distance 0: the smallest inner id must win, everywhere.
    let outer = vec![Rect::new(100.0, 900.0, 50.0, 50.0)];
    let inner = vec![
        Rect::new(120.0, 880.0, 10.0, 10.0), // overlaps, id 0
        Rect::new(110.0, 890.0, 10.0, 10.0), // overlaps, id 1
        Rect::new(500.0, 500.0, 10.0, 10.0),
    ];
    let cl = cluster(4);
    let got = ann_join(&cl, &outer, &inner);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].inner, 0);
    assert_eq!(got[0].distance, 0.0);
    assert_eq!(got, ann_brute_force(&outer, &inner));
}

#[test]
fn empty_relations() {
    let r = relation(10, 7);
    let cl = cluster(4);
    assert!(ann_join(&cl, &r, &[]).is_empty());
    assert!(ann_join(&cl, &[], &r).is_empty());
}

#[test]
fn self_ann_is_reflexive_at_zero() {
    // Every rectangle's NN within its own relation is itself (closed
    // distance 0, smallest id tie-break may pick an overlapping earlier
    // rectangle — distance must still be 0).
    let r = relation(100, 8);
    let cl = cluster(8);
    let got = ann_join(&cl, &r, &r);
    assert_eq!(got.len(), r.len());
    for nn in &got {
        assert_eq!(nn.distance, 0.0);
    }
    assert_eq!(got, ann_brute_force(&r, &r));
}

#[test]
fn runs_three_jobs() {
    let outer = relation(50, 9);
    let inner = relation(50, 10);
    let cl = cluster(4);
    let _ = ann_join(&cl, &outer, &inner);
    assert_eq!(cl.engine().report().num_jobs(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_ann_equals_brute_force(
        n_outer in 1usize..60,
        n_inner in 1usize..60,
        seed in 0u64..1_000,
        side in 1u32..6,
    ) {
        let outer = relation(n_outer, seed);
        let inner = relation(n_inner, seed.wrapping_add(1));
        let cl = cluster(side);
        prop_assert_eq!(ann_join(&cl, &outer, &inner), ann_brute_force(&outer, &inner));
    }
}

// ------------------------------------------------------------------- kNN

mod knn {
    use super::*;
    use mwsj_core::ann::{knn_brute_force, knn_join};

    #[test]
    fn matches_brute_force_random() {
        let outer = relation(150, 21);
        let inner = relation(150, 22);
        let cl = cluster(8);
        for k in [1usize, 3, 7] {
            assert_eq!(
                knn_join(&cl, &outer, &inner, k),
                knn_brute_force(&outer, &inner, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn k_exceeding_inner_size_returns_everything() {
        let outer = relation(30, 23);
        let inner = relation(5, 24);
        let cl = cluster(4);
        let got = knn_join(&cl, &outer, &inner, 50);
        assert_eq!(got, knn_brute_force(&outer, &inner, 50));
        assert!(got.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn k_one_equals_ann() {
        use mwsj_core::ann::ann_join;
        let outer = relation(100, 25);
        let inner = relation(100, 26);
        let cl = cluster(8);
        let knn = knn_join(&cl, &outer, &inner, 1);
        let ann = ann_join(&cl, &outer, &inner);
        for (list, nn) in knn.iter().zip(&ann) {
            assert_eq!(list.len(), 1);
            assert_eq!(&list[0], nn);
        }
    }

    #[test]
    fn sparse_inner_with_fallback_bounds() {
        let outer = relation(80, 27);
        let inner = relation(4, 28);
        let cl = cluster(8);
        assert_eq!(
            knn_join(&cl, &outer, &inner, 3),
            knn_brute_force(&outer, &inner, 3)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_knn_equals_brute_force(
            n_outer in 1usize..40,
            n_inner in 1usize..40,
            k in 1usize..6,
            seed in 0u64..500,
        ) {
            let outer = relation(n_outer, seed);
            let inner = relation(n_inner, seed.wrapping_add(9));
            let cl = cluster(4);
            prop_assert_eq!(
                knn_join(&cl, &outer, &inner, k),
                knn_brute_force(&outer, &inner, k)
            );
        }
    }
}
