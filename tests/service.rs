//! End-to-end tests of the query service: wire protocol, result cache,
//! admission control, cancellation and shutdown — all against a real
//! TCP server on a loopback port, checked for byte-identity with direct
//! [`Cluster::submit`] runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;
use mwsj_server::json::{self, Json};
use mwsj_server::source::load_source;
use mwsj_server::{Client, Server, ServerConfig};

/// The space every test server uses (the `ServerConfig` default).
const EXTENT: f64 = 100_000.0;

fn start(config: ServerConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn stop(addr: &str, handle: thread::JoinHandle<()>) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    handle.join().expect("server thread");
}

fn query_line(query: &str, data: &[(&str, &str)], extra: &str) -> String {
    let bindings: Vec<String> = data
        .iter()
        .map(|(name, spec)| format!("\"{name}\":\"{spec}\""))
        .collect();
    format!(
        "{{\"op\":\"query\",\"query\":\"{query}\",\"data\":{{{}}}{extra}}}",
        bindings.join(",")
    )
}

fn response(client: &mut Client, line: &str) -> Json {
    let text = client.request(line).expect("request");
    json::parse(&text).expect("well-formed response")
}

fn tuples_of(doc: &Json) -> Vec<Vec<u32>> {
    doc.get("tuples")
        .and_then(Json::as_arr)
        .expect("tuples array")
        .iter()
        .map(|t| {
            t.as_arr()
                .expect("tuple")
                .iter()
                .map(|v| {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let id = v.as_f64().expect("id") as u32;
                    id
                })
                .collect()
        })
        .collect()
}

/// Runs the same query directly on a private cluster with the service's
/// space and grid — the ground truth the served result must match.
fn direct(query: &str, specs: &[&str], algorithm: Algorithm) -> (Vec<Vec<u32>>, u64) {
    let q = Query::parse(query).expect("query");
    let datasets: Vec<Vec<Rect>> = specs
        .iter()
        .map(|s| load_source(s).expect("load"))
        .collect();
    let refs: Vec<&[Rect]> = datasets.iter().map(Vec::as_slice).collect();
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, EXTENT), (0.0, EXTENT), 8));
    let out = cluster
        .submit(&JoinRun::new(&q, &refs).algorithm(algorithm))
        .expect("direct join");
    (out.tuples, out.tuple_count)
}

const A: &str = "synthetic:n=800,seed=11,extent=5000,lmax=300";
const B: &str = "synthetic:n=800,seed=12,extent=5000,lmax=300";
const C: &str = "synthetic:n=800,seed=13,extent=5000,lmax=300";

#[test]
fn served_query_is_byte_identical_to_direct_submit() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");

    let doc = response(
        &mut c,
        &query_line("A ov B and B ov C", &[("A", A), ("B", B), ("C", C)], ""),
    );
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));

    let (want, want_count) = direct(
        "A ov B and B ov C",
        &[A, B, C],
        Algorithm::ControlledReplicate,
    );
    assert!(want_count > 0, "test query must produce tuples");
    assert_eq!(tuples_of(&doc), want);
    assert_eq!(
        doc.get("tuple_count").and_then(Json::as_f64),
        Some(want_count as f64)
    );

    // A differently-spelled equivalent query: positions reordered, one
    // conjunct flipped. Served from cache, yet byte-identical to a direct
    // run of *that* spelling (ids in C, B, A position order).
    let flipped = response(
        &mut c,
        &query_line("C ov B and A ov B", &[("C", C), ("B", B), ("A", A)], ""),
    );
    assert_eq!(flipped.get("cached").and_then(Json::as_bool), Some(true));
    let (want_flipped, _) = direct(
        "C ov B and A ov B",
        &[C, B, A],
        Algorithm::ControlledReplicate,
    );
    assert_eq!(tuples_of(&flipped), want_flipped);
    assert_eq!(
        doc.get("counters").expect("counters"),
        flipped.get("counters").expect("counters"),
        "a cache hit replays the original run's counters"
    );

    stop(&addr, h);
}

#[test]
fn repeated_query_hits_the_cache_and_counts_in_stats() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let line = query_line("A ov B", &[("A", A), ("B", B)], "");

    let first = response(&mut c, &line);
    let second = response(&mut c, &line);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(tuples_of(&first), tuples_of(&second));
    assert_eq!(
        first.get("fingerprint").and_then(Json::as_str),
        second.get("fingerprint").and_then(Json::as_str)
    );

    // A different seed changes the dataset fingerprint: clean miss.
    let other = response(
        &mut c,
        &query_line(
            "A ov B",
            &[
                ("A", A),
                ("B", "synthetic:n=800,seed=99,extent=5000,lmax=300"),
            ],
            "",
        ),
    );
    assert_eq!(other.get("cached").and_then(Json::as_bool), Some(false));
    assert_ne!(
        first.get("fingerprint").and_then(Json::as_str),
        other.get("fingerprint").and_then(Json::as_str)
    );

    let stats = response(&mut c, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("queries").and_then(Json::as_f64), Some(3.0));
    assert_eq!(
        stats.get("served_from_cache").and_then(Json::as_f64),
        Some(1.0)
    );
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(2.0));

    stop(&addr, h);
}

/// The cache must never key on `"auto"`: the server resolves the planner's
/// choice *before* building the cache key, so an auto query and its
/// manually pinned twin share one entry — and every response reports the
/// concrete algorithm that (originally) ran.
#[test]
fn auto_and_pinned_twin_share_one_cache_entry() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let data = [("A", A), ("B", B), ("C", C)];

    // `explain` names the planner's choice without executing anything.
    let plan = response(
        &mut c,
        &query_line("A ov B and B ov C", &data, "")
            .replace("\"op\":\"query\"", "\"op\":\"explain\""),
    );
    assert_eq!(plan.get("ok").and_then(Json::as_bool), Some(true));
    let chosen = plan
        .get("plan")
        .and_then(|p| p.get("algorithm"))
        .and_then(Json::as_str)
        .expect("plan algorithm")
        .to_string();
    assert_ne!(chosen, "auto");

    // An auto query reports that same concrete algorithm…
    let auto = response(&mut c, &query_line("A ov B and B ov C", &data, ""));
    assert_eq!(auto.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        auto.get("algorithm").and_then(Json::as_str),
        Some(chosen.as_str())
    );

    // …and pinning it explicitly hits the entry the auto run populated.
    let pinned = response(
        &mut c,
        &query_line(
            "A ov B and B ov C",
            &data,
            &format!(",\"algorithm\":\"{chosen}\""),
        ),
    );
    assert_eq!(pinned.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        pinned.get("algorithm").and_then(Json::as_str),
        Some(chosen.as_str())
    );
    assert_eq!(tuples_of(&auto), tuples_of(&pinned));

    // Spelling `"auto"` explicitly is the same key too.
    let spelled = response(
        &mut c,
        &query_line("A ov B and B ov C", &data, ",\"algorithm\":\"auto\""),
    );
    assert_eq!(spelled.get("cached").and_then(Json::as_bool), Some(true));

    let stats = response(&mut c, "{\"op\":\"stats\"}");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(2.0));

    stop(&addr, h);
}

#[test]
fn count_only_mode_is_cached_separately() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");

    let counted = response(
        &mut c,
        &query_line("A ov B", &[("A", A), ("B", B)], ",\"count_only\":true"),
    );
    assert_eq!(counted.get("cached").and_then(Json::as_bool), Some(false));
    assert!(tuples_of(&counted).is_empty());
    let (_, want_count) = direct("A ov B", &[A, B], Algorithm::ControlledReplicate);
    assert_eq!(
        counted.get("tuple_count").and_then(Json::as_f64),
        Some(want_count as f64)
    );

    // The canonical variant of the spelling hits the count-only entry…
    let variant = response(
        &mut c,
        &query_line("B ov A", &[("B", B), ("A", A)], ",\"count_only\":true"),
    );
    assert_eq!(variant.get("cached").and_then(Json::as_bool), Some(true));

    // …but a materializing request must not be served from it.
    let materialized = response(&mut c, &query_line("A ov B", &[("A", A), ("B", B)], ""));
    assert_eq!(
        materialized.get("cached").and_then(Json::as_bool),
        Some(false)
    );
    assert!(!tuples_of(&materialized).is_empty());

    stop(&addr, h);
}

#[test]
fn eight_concurrent_clients_get_solo_counters() {
    let queries: Vec<Vec<(String, String)>> = (0..8)
        .map(|i| {
            let a = format!("synthetic:n=400,seed={},extent=5000,lmax=250", 100 + 2 * i);
            let b = format!("synthetic:n=400,seed={},extent=5000,lmax=250", 101 + 2 * i);
            vec![("A".to_string(), a), ("B".to_string(), b)]
        })
        .collect();
    let line = |i: usize| {
        let refs: Vec<(&str, &str)> = queries[i]
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        query_line("A ov B", &refs, ",\"algorithm\":\"crep\"")
    };

    // Solo pass: each query alone on its own server.
    let mut solo = Vec::new();
    for i in 0..8 {
        let (addr, h) = start(ServerConfig::default());
        let mut c = Client::connect(&addr).expect("connect");
        let doc = response(&mut c, &line(i));
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "solo {i}"
        );
        solo.push(doc);
        stop(&addr, h);
    }

    // Concurrent pass: all eight at once on one shared, slot-constrained
    // server, queueing behind the fair-share scheduler.
    let (addr, h) = start(ServerConfig::default().with_slots(4).with_admission(8, 8));
    let mismatches = AtomicUsize::new(0);
    thread::scope(|scope| {
        for (i, solo_doc) in solo.iter().enumerate() {
            let addr = addr.clone();
            let line = line(i);
            let mismatches = &mismatches;
            scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let doc = response(&mut c, &line);
                let same_counters = doc.get("counters").expect("counters")
                    == solo_doc.get("counters").expect("counters");
                let same_tuples = tuples_of(&doc) == tuples_of(solo_doc);
                if !(same_counters && same_tuples) {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every concurrent run must report counters and tuples identical to its solo run"
    );
    stop(&addr, h);
}

/// A deliberately heavy request: three large relations under C-Rep.
fn heavy_line(extra: &str) -> String {
    query_line(
        "X ov Y and Y ov Z",
        &[
            ("X", "synthetic:n=300000,seed=31,lmax=250"),
            ("Y", "synthetic:n=300000,seed=32,lmax=250"),
            ("Z", "synthetic:n=300000,seed=33,lmax=250"),
        ],
        extra,
    )
}

#[test]
fn disconnecting_client_cancels_its_run_without_disturbing_others() {
    let (addr, h) = start(ServerConfig::default().with_slots(4));

    // Pre-warm the heavy datasets (a 1 ms deadline kills the join right
    // away) so the run below spends its slot time joining, not loading.
    {
        let mut warm = Client::connect(&addr).expect("connect");
        let _ = warm.request(&heavy_line(",\"deadline_ms\":1"));
    }

    // Send the heavy query, then vanish without reading the response.
    let stream = std::net::TcpStream::connect(&addr).expect("connect raw");
    {
        use std::io::Write as _;
        let mut w = &stream;
        w.write_all(heavy_line(",\"algorithm\":\"crep\"").as_bytes())
            .expect("send");
        w.write_all(b"\n").expect("send");
        w.flush().expect("flush");
    }
    thread::sleep(Duration::from_millis(200)); // let the join start
    drop(stream); // client disconnects mid-run

    // The server must notice, cancel the run and free its slots; other
    // clients keep being served meanwhile.
    let mut c = Client::connect(&addr).expect("connect");
    let ok = response(&mut c, &query_line("A ov B", &[("A", A), ("B", B)], ""));
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = response(&mut c, "{\"op\":\"stats\"}");
        let cancelled = stats.get("cancelled").and_then(Json::as_f64).unwrap_or(0.0);
        // >= 2 because the warm-up's deadline cancel also counts.
        if cancelled >= 2.0 {
            let slots = stats.get("slots").and_then(Json::as_f64).expect("slots");
            let available = stats
                .get("slots_available")
                .and_then(Json::as_f64)
                .expect("available");
            assert_eq!(slots, 4.0);
            assert_eq!(available, slots, "cancelled run must release all its slots");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "run was never cancelled: {stats:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
    stop(&addr, h);
}

#[test]
fn saturated_service_sheds_with_a_typed_error() {
    let (addr, h) = start(ServerConfig::default().with_slots(2).with_admission(1, 0));

    // Pre-warm the heavy datasets so admission isn't held during generation.
    {
        let mut warm = Client::connect(&addr).expect("connect");
        let _ = warm.request(&heavy_line(",\"deadline_ms\":1"));
    }
    let mut occupant = Client::connect(&addr).expect("connect");
    let occupant_thread = thread::spawn(move || {
        // Bounded by the deadline, so the test always terminates.
        occupant
            .request(&heavy_line(",\"deadline_ms\":4000"))
            .expect("occupant response")
    });
    thread::sleep(Duration::from_millis(300)); // occupant now holds the only join slot

    let mut c = Client::connect(&addr).expect("connect");
    let shed = response(&mut c, &query_line("A ov B", &[("A", A), ("B", B)], ""));
    assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(shed.get("error").and_then(Json::as_str), Some("overloaded"));

    let occupant_response = occupant_thread.join().expect("occupant thread");
    let occupant_doc = json::parse(&occupant_response).expect("occupant json");
    // The occupant either finished or hit its deadline — both legal.
    if occupant_doc.get("ok").and_then(Json::as_bool) == Some(false) {
        assert_eq!(
            occupant_doc.get("error").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
    }

    let stats = response(&mut c, "{\"op\":\"stats\"}");
    assert!(stats.get("shed").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);

    stop(&addr, h);
}

#[test]
fn malformed_and_unsatisfiable_requests_get_typed_errors() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");

    let bad_lines: Vec<String> = vec![
        "this is not json".to_string(),
        "{\"op\":\"transmogrify\"}".to_string(),
        "{\"op\":\"query\",\"query\":\"A ov\",\"data\":{\"A\":\"x\"}}".to_string(),
        // Binding for a relation the query never mentions.
        query_line("A ov B", &[("A", A), ("B", B), ("Z", C)], ""),
        // Missing binding for B.
        query_line("A ov B", &[("A", A)], ""),
        // Dataset outside the service space.
        query_line(
            "A ov B",
            &[("A", A), ("B", "synthetic:n=10,seed=1,extent=900000")],
            "",
        ),
    ];
    for line in &bad_lines {
        let doc = response(&mut c, line);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("bad_request"),
            "{line}"
        );
    }

    stop(&addr, h);
}

#[test]
fn shutdown_op_stops_the_server_cleanly() {
    let (addr, h) = start(ServerConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let ok = response(&mut c, &query_line("A ov B", &[("A", A), ("B", B)], ""));
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

    let bye = response(&mut c, "{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));

    let deadline = Instant::now() + Duration::from_secs(10);
    while !h.is_finished() {
        assert!(Instant::now() < deadline, "server did not stop");
        thread::sleep(Duration::from_millis(20));
    }
    h.join().expect("clean exit");
}
