//! **Hybrid** joins mixing overlap and range predicates end-to-end (§9):
//! the workload trends behind Tables 8-9, plus the refinement step over
//! polygon payloads.

use mwsj_core::{reference, refine, Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::{bernoulli_sample, CaliforniaConfig, SyntheticConfig};
use mwsj_geom::{Point, Polygon, Rect};
use mwsj_query::Query;

fn q4(d: f64) -> Query {
    // The paper's Q4 = R1 Ov R2 and R2 Ra(d) R3.
    Query::builder()
        .overlap("R1", "R2")
        .range("R2", "R3", d)
        .build()
        .unwrap()
}

fn paper_cluster() -> Cluster {
    Cluster::new(ClusterConfig::for_space(
        (0.0, 100_000.0),
        (0.0, 100_000.0),
        8,
    ))
}

fn synthetic(n: usize, seed: u64) -> Vec<Rect> {
    SyntheticConfig::paper_default(n, seed).generate()
}

#[test]
fn table8_hybrid_chain_correct_for_both_crep_variants() {
    let cl = paper_cluster();
    let q = q4(200.0);
    let r1 = synthetic(4_000, 61);
    let r2 = synthetic(4_000, 62);
    let r3 = synthetic(4_000, 63);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
    assert!(!expected.is_empty());

    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let crepl = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
    assert_eq!(crep.tuples, expected);
    assert_eq!(crepl.tuples, expected);
    assert!(crepl.stats.rectangles_after_replication <= crep.stats.rectangles_after_replication);
}

#[test]
fn table9_california_hybrid_self_join_trend() {
    // Table 9: Q4s = R Ov R and R Ra(d) R over sampled road data; both the
    // marked count and the output grow with d.
    let cl = Cluster::new(ClusterConfig::for_space(
        (0.0, 63_000.0),
        (0.0, 100_000.0),
        8,
    ));
    let full = CaliforniaConfig::new(5_000, 31).generate();
    let data = bernoulli_sample(&full, 0.5, 3);

    let mut marked = Vec::new();
    let mut outputs = Vec::new();
    for d in [10.0, 40.0] {
        let q = Query::builder()
            .overlap("Ra", "Rb")
            .range("Rb", "Rc", d)
            .build()
            .unwrap();
        let out = cl.run(
            &q,
            &[&data, &data, &data],
            Algorithm::ControlledReplicateLimit,
        );
        assert_eq!(
            out.tuples,
            reference::in_memory_join(&q, &[&data, &data, &data]),
            "d = {d}"
        );
        marked.push(out.stats.rectangles_replicated);
        outputs.push(out.tuples.len());
    }
    assert!(outputs[1] > outputs[0], "outputs: {outputs:?}");
    assert!(marked[1] >= marked[0], "marked: {marked:?}");
}

#[test]
fn hybrid_equals_range_rewrite() {
    // §9: a hybrid query may equivalently replace each overlap predicate
    // with Ra(0) and be processed as a pure range query.
    let cl = paper_cluster();
    let r1 = synthetic(2_000, 71);
    let r2 = synthetic(2_000, 72);
    let r3 = synthetic(2_000, 73);
    let hybrid = q4(150.0);
    let rewritten = Query::builder()
        .range("R1", "R2", 0.0)
        .range("R2", "R3", 150.0)
        .build()
        .unwrap();
    let a = cl.run(&hybrid, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let b = cl.run(&rewritten, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert_eq!(a.tuples, b.tuples);
}

#[test]
fn four_relation_hybrid_chain_all_algorithms() {
    let cl = paper_cluster();
    let q = Query::builder()
        .overlap("R1", "R2")
        .range("R2", "R3", 300.0)
        .overlap("R3", "R4")
        .build()
        .unwrap();
    let rels: Vec<Vec<Rect>> = (0..4).map(|i| synthetic(1_200, 80 + i)).collect();
    let refs: Vec<&[Rect]> = rels.iter().map(Vec::as_slice).collect();
    let expected = reference::in_memory_join(&q, &refs);
    for alg in Algorithm::ALL {
        let out = cl.run(&q, &refs, alg);
        assert_eq!(out.tuples, expected, "{}", alg.name());
    }
}

/// The filter + refinement pipeline of §1.1: generate polygon objects,
/// join their MBRs on the cluster, then refine with exact geometry.
#[test]
fn filter_then_refine_pipeline_over_polygons() {
    // Triangles with heavy MBR slack so the filter over-reports.
    fn triangles(n: usize, seed: u64) -> Vec<Polygon> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..900.0);
                let y = rng.random_range(100.0..1000.0);
                let s = rng.random_range(10.0..80.0);
                // A thin sliver triangle: big MBR, small actual area.
                Polygon::new(vec![
                    Point::new(x, y),
                    Point::new((x + s).min(1000.0), (y - s).max(0.0)),
                    Point::new((x + s * 0.9).min(1000.0), (y - s).max(0.0)),
                ])
            })
            .collect()
    }
    let p1 = triangles(150, 1);
    let p2 = triangles(150, 2);
    let mbr1: Vec<Rect> = p1.iter().map(Polygon::mbr).collect();
    let mbr2: Vec<Rect> = p2.iter().map(Polygon::mbr).collect();

    let q = Query::parse("A ov B").unwrap();
    let cl = Cluster::new(ClusterConfig::for_space((0.0, 1000.0), (0.0, 1000.0), 4));
    let filtered = cl.run(&q, &[&mbr1, &mbr2], Algorithm::ControlledReplicate);
    let refined = refine::refine_tuples(&q, &[&p1, &p2], &filtered.tuples);

    // The refinement only removes candidates, never adds.
    assert!(refined.len() <= filtered.tuples.len());
    // And it removes exactly the pairs whose exact shapes do not touch.
    for tuple in &filtered.tuples {
        let touches = p1[tuple[0] as usize].intersects(&p2[tuple[1] as usize]);
        assert_eq!(refined.contains(tuple), touches);
    }
    // The MBR slack must actually produce false positives for this test to
    // mean anything.
    assert!(
        refined.len() < filtered.tuples.len(),
        "expected MBR false positives: filter {} refine {}",
        filtered.tuples.len(),
        refined.len()
    );
}
