//! The containment predicate — the paper's §10 future work, implemented:
//! `Contains(r1, r2)` joins distribute with the overlap machinery (a
//! contained rectangle overlaps its container) while the exact directional
//! test runs locally. These tests pin orientation semantics and validate
//! all four distributed algorithms against the oracle.

use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig};
use mwsj_geom::Rect;
use mwsj_query::{Predicate, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPACE: (f64, f64) = (0.0, 1000.0);

fn cluster(side: u32) -> Cluster {
    Cluster::new(ClusterConfig::for_space(SPACE, SPACE, side))
}

/// Mix of large "container" rectangles and small ones so containment
/// actually fires.
fn mixed_relation(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let big = rng.random_bool(0.3);
            let side = if big {
                rng.random_range(60.0..150.0)
            } else {
                rng.random_range(1.0..25.0)
            };
            let x = rng.random_range(0.0..SPACE.1 - side);
            let y = rng.random_range(side..SPACE.1);
            Rect::new(x, y, side, side * rng.random_range(0.5..1.0))
        })
        .collect()
}

#[test]
fn predicate_is_directional() {
    let outer = Rect::new(0.0, 100.0, 50.0, 50.0);
    let inner = Rect::new(10.0, 90.0, 10.0, 10.0);
    assert!(Predicate::Contains.eval(&outer, &inner));
    assert!(!Predicate::Contains.eval(&inner, &outer));
    assert!(Predicate::Contains.eval_oriented(&inner, &outer, true));
    assert!(!Predicate::Contains.is_symmetric());
    assert!(Predicate::Overlap.is_symmetric());
}

#[test]
fn parser_and_display_roundtrip() {
    let q = Query::parse("county contains city and city overlaps river").unwrap();
    assert_eq!(q.triples()[0].predicate, Predicate::Contains);
    assert_eq!(
        q.to_string(),
        "county contains city and city overlaps river"
    );
    assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
}

#[test]
fn oracle_respects_direction() {
    let outer = vec![Rect::new(0.0, 100.0, 50.0, 50.0)];
    let inner = vec![Rect::new(10.0, 90.0, 10.0, 10.0)];
    let q_fwd = Query::parse("A contains B").unwrap();
    let q_rev = Query::parse("B contains A").unwrap();
    assert_eq!(
        reference::in_memory_join(&q_fwd, &[&outer, &inner]),
        vec![vec![0, 0]]
    );
    // q_rev's first position is B; binding the outer rectangle to B makes
    // "B contains A" hold...
    assert_eq!(
        reference::in_memory_join(&q_rev, &[&outer, &inner]),
        vec![vec![0, 0]]
    );
    // ...while binding the inner rectangle to the container position does
    // not.
    assert!(reference::in_memory_join(&q_rev, &[&inner, &outer]).is_empty());
    assert!(reference::in_memory_join(&q_fwd, &[&inner, &outer]).is_empty());
}

fn check_all(query: &Query, relations: &[&[Rect]], side: u32) {
    let expected = reference::in_memory_join(query, relations);
    let cl = cluster(side);
    for alg in Algorithm::ALL {
        let got = cl.run(query, relations, alg);
        assert_eq!(
            got.tuples,
            expected,
            "{} deviates ({} vs {} tuples)",
            alg.name(),
            got.tuples.len(),
            expected.len()
        );
    }
}

#[test]
fn two_way_containment_all_algorithms() {
    let q = Query::parse("A contains B").unwrap();
    let a = mixed_relation(250, 1);
    let b = mixed_relation(250, 2);
    let expected = reference::in_memory_join(&q, &[&a, &b]);
    assert!(!expected.is_empty(), "workload must produce containments");
    check_all(&q, &[&a, &b], 8);
}

#[test]
fn containment_chain_all_algorithms() {
    // County contains city, city overlaps river.
    let q = Query::parse("county contains city and city overlaps river").unwrap();
    let county = mixed_relation(200, 3);
    let city = mixed_relation(200, 4);
    let river = mixed_relation(200, 5);
    check_all(&q, &[&county, &city, &river], 8);
}

#[test]
fn containment_with_range_all_algorithms() {
    let q = Query::parse("A contains B and B within 40 of C").unwrap();
    let a = mixed_relation(150, 6);
    let b = mixed_relation(150, 7);
    let c = mixed_relation(150, 8);
    check_all(&q, &[&a, &b, &c], 4);
}

#[test]
fn reversed_containment_direction_all_algorithms() {
    // The right side is the container: orientation must survive the
    // graph's bidirectional adjacency.
    let q = Query::builder()
        .condition(Predicate::Contains, "B", "A")
        .overlap("A", "C")
        .build()
        .unwrap();
    let b = mixed_relation(150, 9);
    let a = mixed_relation(150, 10);
    let c = mixed_relation(150, 11);
    check_all(&q, &[&b, &a, &c], 4);
}

#[test]
fn nested_containment_self_join() {
    // Triples (a, b) with a ⊇ b from one dataset: every rectangle contains
    // itself (closed semantics), so the diagonal is always present.
    let q = Query::parse("outer contains inner").unwrap();
    let r = mixed_relation(200, 12);
    let cl = cluster(8);
    let out = cl.run(&q, &[&r, &r], Algorithm::ControlledReplicate);
    assert_eq!(out.tuples, reference::in_memory_join(&q, &[&r, &r]));
    for id in 0..r.len() as u32 {
        assert!(out.tuples.contains(&vec![id, id]));
    }
}

#[test]
fn containment_marks_fewer_than_overlap() {
    // Contains is stricter than overlap, so C-Rep's consistency pruning
    // (C1) marks at most as many rectangles.
    let a = mixed_relation(400, 13);
    let b = mixed_relation(400, 14);
    let c = mixed_relation(400, 15);
    let cl = cluster(8);
    let q_cont = Query::parse("A contains B and B contains C").unwrap();
    let q_ov = Query::parse("A ov B and B ov C").unwrap();
    let cont = cl.run(&q_cont, &[&a, &b, &c], Algorithm::ControlledReplicate);
    let ov = cl.run(&q_ov, &[&a, &b, &c], Algorithm::ControlledReplicate);
    assert!(cont.stats.rectangles_replicated <= ov.stats.rectangles_replicated);
    assert!(cont.tuples.len() <= ov.tuples.len());
    assert_eq!(
        cont.tuples,
        reference::in_memory_join(&q_cont, &[&a, &b, &c])
    );
}
