//! Exact reproductions of the worked examples in the paper's figures.
//!
//! The paper's figures are conceptual (not measured plots); each one walks
//! a small geometric configuration through part of the machinery. These
//! tests pin the full pipeline to those walkthroughs: Figure 2 (the
//! project / split / replicate transforms), Figure 3 (All-Replicate
//! routing and the §6.2 designated reducer), Figure 4 (the crossing-pair
//! motivation of §7.6), Figure 5 (the complete Controlled-Replicate
//! example of §7.7) and Figure 6/8 (the C-Rep-L bounds, covered in
//! `mwsj-query`). Figure 7's range-marking example is unit-tested in
//! `mwsj_local::marking`.

use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig};
use mwsj_geom::Rect;
use mwsj_partition::{CellId, Grid, Transform};
use mwsj_query::Query;

fn numbers(cells: &[CellId]) -> Vec<u32> {
    cells.iter().map(|c| c.paper_number()).collect()
}

// ---------------------------------------------------------------- Figure 2

#[test]
fn figure2_project_split_replicate() {
    // Figure 2(a)/(c): 4x4 grid; r1 starts in cell 6 and extends into 7.
    // Project -> {6}; Split -> {6, 7}; Replicate f1 -> 4th quadrant
    // {6-8, 10-12, 14-16}; Replicate f2 with a one-cell reach -> {6, 7,
    // 10, 11}.
    let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
    let r1 = Rect::new(3.0, 5.5, 1.5, 1.0);
    assert_eq!(numbers(&Transform::Project.target_cells(&r1, &grid)), [6]);
    assert_eq!(numbers(&Transform::Split.target_cells(&r1, &grid)), [6, 7]);
    assert_eq!(
        numbers(&Transform::ReplicateF1.target_cells(&r1, &grid)),
        [6, 7, 8, 10, 11, 12, 14, 15, 16]
    );
    assert_eq!(
        numbers(&Transform::ReplicateF2 { d: 0.5 }.target_cells(&r1, &grid)),
        [6, 7, 10, 11]
    );
}

#[test]
fn figure2_overlap_needs_split_not_project() {
    // §5.2's counterexample: r1 projected reaches only reducer 6, r2 split
    // reaches reducers 3 and 7 — no reducer sees both, although they
    // overlap. Splitting both fixes it.
    let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
    let r1 = Rect::new(3.0, 5.5, 1.5, 1.0); // cell 6, into 7
    let r2 = Rect::new(4.2, 6.5, 0.8, 1.5); // cell 3, into 7
    assert!(r1.overlaps(&r2));
    let proj1 = Transform::Project.target_cells(&r1, &grid);
    let split2 = Transform::Split.target_cells(&r2, &grid);
    assert!(proj1.iter().all(|c| !split2.contains(c)));
    let split1 = Transform::Split.target_cells(&r1, &grid);
    assert!(split1.iter().any(|c| split2.contains(c)));
}

// ---------------------------------------------------------------- Figure 3

/// Figure 3's four-relation chain Q1 on an 8x4 grid of 32 reducers.
#[test]
fn figure3_all_replicate_routing_and_designated_reducer() {
    let grid = Grid::new((0.0, 80.0), (0.0, 40.0), 8, 4);
    // The tuple U = (u1, v1, w1, x1) — geometry reconstructed from the
    // figure (see tests in mwsj-local::dedup for the designated point).
    let u1 = Rect::new(15.0, 15.0, 4.0, 4.0); // cell 18 only, lowermost
    let v1 = Rect::new(14.0, 25.0, 5.0, 12.0); // cells 10 + 18
    let w1 = Rect::new(16.0, 36.0, 8.0, 14.0); // cells 2, 3, 10, 11
    let x1 = Rect::new(23.0, 34.0, 3.0, 8.0); // cells 3 + 11, rightmost
    for (r, expect_cell) in [(u1, 18), (v1, 10), (w1, 2), (x1, 3)] {
        assert_eq!(grid.cell_of(&r).paper_number(), expect_cell);
    }
    // The split targets the figure states for each rectangle.
    assert_eq!(numbers(&grid.split_cells(&u1)), [18]);
    assert_eq!(numbers(&grid.split_cells(&v1)), [10, 18]);
    assert_eq!(numbers(&grid.split_cells(&w1)), [2, 3, 10, 11]);
    assert_eq!(numbers(&grid.split_cells(&x1)), [3, 11]);

    // §6.1: after f1 replication, reducers 19-24 and 27-32 receive all
    // four rectangles.
    let targets: Vec<Vec<u32>> = [u1, v1, w1, x1]
        .iter()
        .map(|r| numbers(&grid.fourth_quadrant_cells(r)))
        .collect();
    let all_four: Vec<u32> = (1..=32)
        .filter(|c| targets.iter().all(|t| t.contains(c)))
        .collect();
    assert_eq!(all_four, [19, 20, 21, 22, 23, 24, 27, 28, 29, 30, 31, 32]);

    // §6.2: the designated reducer is 19 (the cell of (x1.x, u1.y)), and
    // the full All-Replicate run produces the tuple exactly once.
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let cluster = Cluster::new(ClusterConfig {
        x_range: (0.0, 80.0),
        y_range: (0.0, 40.0),
        grid_cols: 8,
        grid_rows: 4,
        num_reducers: None,
        engine: mwsj_mapreduce::EngineConfig::default(),
    });
    let out = cluster.run(&q, &[&[u1], &[v1], &[w1], &[x1]], Algorithm::AllReplicate);
    assert_eq!(out.tuples, vec![vec![0, 0, 0, 0]]);
}

#[test]
fn figure3_isolated_u4_is_replicated_everywhere() {
    // §6.4: rectangle u4 sits in cell 1 and joins nothing, yet
    // All-Replicate communicates it to all 32 reducers — the waste C-Rep
    // eliminates.
    let grid = Grid::new((0.0, 80.0), (0.0, 40.0), 8, 4);
    let u4 = Rect::new(2.0, 38.0, 3.0, 3.0);
    assert_eq!(grid.cell_of(&u4).paper_number(), 1);
    assert_eq!(grid.fourth_quadrant_cells(&u4).len(), 32);
}

// ---------------------------------------------------------------- Figure 5

/// The complete §7.7 walkthrough: 2x2 grid, chain query Q1, the u/v/w/x
/// rectangles. (The same geometry is unit-tested against the marking
/// procedure in `mwsj-local`; here the full two-round C-Rep pipeline runs.)
struct Fig5 {
    u: Vec<Rect>,
    v: Vec<Rect>,
    w: Vec<Rect>,
    x: Vec<Rect>,
}

fn fig5() -> Fig5 {
    Fig5 {
        u: vec![
            Rect::new(0.5, 7.5, 0.5, 0.5), // u1
            Rect::new(1.5, 6.0, 0.8, 0.8), // u2
            Rect::new(2.2, 3.8, 0.6, 0.6), // u3
        ],
        v: vec![
            Rect::new(0.4, 6.8, 0.4, 0.4), // v1
            Rect::new(3.2, 4.9, 0.6, 0.4), // v2
            Rect::new(2.0, 6.5, 1.2, 3.0), // v3
            Rect::new(3.5, 7.5, 1.0, 0.5), // v4
        ],
        w: vec![
            Rect::new(3.0, 5.0, 2.0, 2.0), // w1
            Rect::new(0.3, 5.2, 0.5, 0.8), // w2
        ],
        x: vec![
            Rect::new(4.5, 4.8, 0.4, 0.4), // x1
            Rect::new(3.4, 4.6, 0.4, 0.4), // x2
        ],
    }
}

#[test]
fn figure5_controlled_replicate_end_to_end() {
    let f = fig5();
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, 8.0), (0.0, 8.0), 2));

    let expected = reference::in_memory_join(&q, &[&f.u, &f.v, &f.w, &f.x]);
    // §7.7: the output is (u2,v3,w1,x1), (u2,v3,w1,x2), (u3,v3,w1,x1),
    // (u3,v3,w1,x2) — 0-based ids below.
    assert_eq!(
        expected,
        vec![
            vec![1, 2, 0, 0],
            vec![1, 2, 0, 1],
            vec![2, 2, 0, 0],
            vec![2, 2, 0, 1],
        ]
    );

    for alg in [
        Algorithm::ControlledReplicate,
        Algorithm::ControlledReplicateLimit,
    ] {
        let out = cluster.run(&q, &[&f.u, &f.v, &f.w, &f.x], alg);
        assert_eq!(out.tuples, expected, "{}", alg.name());
        // §7.7 marks u2, v3, v4, w1, x2 at c1 and u3 at c3; our run also
        // marks x1 at c2 (via the set (w1, x1) — the paper's walkthrough
        // only details reducer c1): 7 rectangles replicated in total.
        assert_eq!(out.stats.rectangles_replicated, 7, "{}", alg.name());
    }
}

#[test]
fn figure5_crep_beats_all_rep_on_communication() {
    let f = fig5();
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, 8.0), (0.0, 8.0), 2));
    let all = cluster.run(&q, &[&f.u, &f.v, &f.w, &f.x], Algorithm::AllReplicate);
    let crep = cluster.run(
        &q,
        &[&f.u, &f.v, &f.w, &f.x],
        Algorithm::ControlledReplicate,
    );
    assert_eq!(all.tuples, crep.tuples);
    // All-Rep replicates all 11 rectangles; C-Rep only 7.
    assert_eq!(all.stats.rectangles_replicated, 11);
    assert_eq!(crep.stats.rectangles_replicated, 7);
    assert!(crep.stats.rectangles_after_replication < all.stats.rectangles_after_replication);
}

// ---------------------------------------------------------------- Figure 4

#[test]
fn figure4_crossing_pair_is_replicated_and_output_lands_at_c4() {
    // Figure 4 (§7.6): a 2x2 grid; v1 and w1 overlap each other inside c1
    // and both cross its boundary; u1 and x1 sit outside c1. Reducer c1
    // must replicate v1 and w1 (the consistent set (v1, w1) satisfies
    // C1-C3), and the output tuple (u1, v1, w1, x1) is computed by c4.
    let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let v1 = Rect::new(3.0, 5.0, 2.0, 0.8); // crosses right into c2
    let w1 = Rect::new(3.5, 5.2, 0.8, 2.0); // overlaps v1, crosses down into c3
    let u1 = Rect::new(4.9, 5.1, 0.6, 0.6); // in c2, overlaps v1
    let x1 = Rect::new(3.6, 3.4, 0.6, 0.6); // in c3, overlaps w1
    assert!(v1.overlaps(&w1) && u1.overlaps(&v1) && w1.overlaps(&x1));
    let c1 = CellId::from_paper_number(1);
    assert_eq!(grid.cell_of(&v1), c1);
    assert_eq!(grid.cell_of(&w1), c1);

    // Marking at c1 replicates v1 and w1.
    let local = vec![Vec::new(), vec![(v1, 1)], vec![(w1, 1)], Vec::new()];
    let flags = mwsj_local::marking::mark_for_replication(&q, &grid, c1, &local);
    assert_eq!(flags[1], vec![true], "v1 must be marked");
    assert_eq!(flags[2], vec![true], "w1 must be marked");

    // End-to-end, the tuple is produced once; its designated cell is c4
    // (the duplicate-avoidance point combines u1's x with x1's y).
    let designated = mwsj_local::dedup::multiway_tuple_cell(&grid, &[u1, v1, w1, x1]);
    assert_eq!(designated.paper_number(), 4);
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, 8.0), (0.0, 8.0), 2));
    let out = cluster.run(
        &q,
        &[&[u1], &[v1], &[w1], &[x1]],
        Algorithm::ControlledReplicate,
    );
    assert_eq!(out.tuples, vec![vec![0, 0, 0, 0]]);
}

// ------------------------------------------------------------- Figure 6/8

#[test]
fn figure6_and_8_replication_bounds() {
    // Figure 6 (§7.9): overlap chain of four — ends replicate to 2*d_max,
    // middles to d_max. Figure 8 (§8): range chain of four — ends to
    // 2*d_max + 3*d, middles to d_max + 2*d.
    let d_max = 11.0;
    let q_ov = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    assert_eq!(
        mwsj_query::replication_bounds(&q_ov, d_max),
        vec![22.0, 11.0, 11.0, 22.0]
    );
    let d = 3.0;
    let q_ra = Query::parse("R1 ra(3) R2 and R2 ra(3) R3 and R3 ra(3) R4").unwrap();
    assert_eq!(
        mwsj_query::replication_bounds(&q_ra, d_max),
        vec![
            2.0 * d_max + 3.0 * d,
            d_max + 2.0 * d,
            d_max + 2.0 * d,
            2.0 * d_max + 3.0 * d
        ]
    );
}
