//! Multi-way **range** joins end-to-end (§8): the workload trends behind
//! Tables 5-7, exercised at test scale through the public API.

use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::{bernoulli_sample, CaliforniaConfig, SyntheticConfig};
use mwsj_geom::Rect;
use mwsj_query::Query;

fn q3(d: f64) -> Query {
    Query::builder()
        .range("R1", "R2", d)
        .range("R2", "R3", d)
        .build()
        .unwrap()
}

fn paper_cluster() -> Cluster {
    Cluster::new(ClusterConfig::for_space(
        (0.0, 100_000.0),
        (0.0, 100_000.0),
        8,
    ))
}

fn synthetic(n: usize, seed: u64) -> Vec<Rect> {
    SyntheticConfig::paper_default(n, seed).generate()
}

#[test]
fn table5_range_chain_correct_and_crepl_cheaper() {
    // Table 5: Q3 with d = 100. C-Rep-L's headline: the number of
    // rectangles after replication drops to a fraction of C-Rep's
    // (~30% in the paper) because range marking is generous but the
    // replication extent can be tightly bounded.
    let cl = paper_cluster();
    let q = q3(100.0);
    let r1 = synthetic(4_000, 21);
    let r2 = synthetic(4_000, 22);
    let r3 = synthetic(4_000, 23);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);

    let crep = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let crepl = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
    assert_eq!(crep.tuples, expected);
    assert_eq!(crepl.tuples, expected);
    assert_eq!(
        crep.stats.rectangles_replicated, crepl.stats.rectangles_replicated,
        "marking is identical; only the extent differs"
    );
    assert!(
        crepl.stats.rectangles_after_replication * 2 <= crep.stats.rectangles_after_replication,
        "C-Rep-L {} vs C-Rep {}",
        crepl.stats.rectangles_after_replication,
        crep.stats.rectangles_after_replication
    );
}

#[test]
fn table6_trend_more_marked_with_growing_d() {
    // Table 6 varies d at fixed nI: a larger d satisfies the range C2
    // condition for more rectangles, so more are marked and the output
    // grows.
    let cl = paper_cluster();
    let mut marked = Vec::new();
    let mut outputs = Vec::new();
    let r1 = synthetic(2_500, 31);
    let r2 = synthetic(2_500, 32);
    let r3 = synthetic(2_500, 33);
    for d in [100.0, 500.0] {
        let q = q3(d);
        let out = cl.run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
        assert_eq!(
            out.tuples,
            reference::in_memory_join(&q, &[&r1, &r2, &r3]),
            "d = {d}"
        );
        marked.push(out.stats.rectangles_replicated);
        outputs.push(out.tuples.len());
    }
    assert!(marked[1] > marked[0], "marked: {marked:?}");
    assert!(outputs[1] > outputs[0], "outputs: {outputs:?}");
}

#[test]
fn table7_california_sampled_self_join() {
    // Table 7: Q3s over California-like roads sampled with p = 0.5.
    let cl = Cluster::new(ClusterConfig::for_space(
        (0.0, 63_000.0),
        (0.0, 100_000.0),
        8,
    ));
    let full = CaliforniaConfig::new(6_000, 99).generate();
    let data = bernoulli_sample(&full, 0.5, 7);
    assert!((data.len() as f64 / full.len() as f64 - 0.5).abs() < 0.05);

    let q = Query::builder()
        .range("Ra", "Rb", 20.0)
        .range("Rb", "Rc", 20.0)
        .build()
        .unwrap();
    let expected = reference::in_memory_join(&q, &[&data, &data, &data]);
    assert!(!expected.is_empty(), "clustered roads must produce triples");
    for alg in [
        Algorithm::ControlledReplicate,
        Algorithm::ControlledReplicateLimit,
    ] {
        let out = cl.run(&q, &[&data, &data, &data], alg);
        assert_eq!(out.tuples, expected, "{}", alg.name());
    }
}

#[test]
fn range_zero_equals_overlap_query() {
    // §9: Ra(0) is the overlap predicate; the distributed runs must agree.
    let cl = paper_cluster();
    let r1 = synthetic(2_000, 41);
    let r2 = synthetic(2_000, 42);
    let r3 = synthetic(2_000, 43);
    let q_ra0 = q3(0.0);
    let q_ov = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let a = cl.run(&q_ra0, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let b = cl.run(&q_ov, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    assert_eq!(a.tuples, b.tuples);
}

#[test]
fn asymmetric_range_distances_in_one_chain() {
    // Different d per edge (not shown in the paper's tables but supported
    // by the framework): correctness against the oracle.
    let cl = paper_cluster();
    let q = Query::builder()
        .range("R1", "R2", 400.0)
        .range("R2", "R3", 50.0)
        .build()
        .unwrap();
    let r1 = synthetic(1_500, 51);
    let r2 = synthetic(1_500, 52);
    let r3 = synthetic(1_500, 53);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
    for alg in Algorithm::ALL {
        let out = cl.run(&q, &[&r1, &r2, &r3], alg);
        assert_eq!(out.tuples, expected, "{}", alg.name());
    }
}
