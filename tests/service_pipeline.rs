//! Wire-level tests of the serving tier's event loop: request
//! pipelining (many requests in flight on one connection, responses in
//! request order), the negotiated binary framing, and the protocol
//! edge cases — oversize frames, half-closed connections with a
//! buffered remnant, and the line-only fallback.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use mwsj_net::frame::encode_frame;
use mwsj_net::{FRAME_HEADER, FRAME_MAGIC};
use mwsj_server::json::{self, Json};
use mwsj_server::{Client, ClientConfig, Proto, ProtoPolicy, Server, ServerConfig};

const A: &str = "synthetic:n=800,seed=11,extent=5000,lmax=300";
const B: &str = "synthetic:n=800,seed=12,extent=5000,lmax=300";

fn start(config: ServerConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn stop(addr: &str, handle: thread::JoinHandle<()>) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    handle.join().expect("server thread");
}

fn query_line(query: &str, data: &[(&str, &str)], extra: &str) -> String {
    let bindings: Vec<String> = data
        .iter()
        .map(|(name, spec)| format!("\"{name}\":\"{spec}\""))
        .collect();
    format!(
        "{{\"op\":\"query\",\"query\":\"{query}\",\"data\":{{{}}}{extra}}}",
        bindings.join(",")
    )
}

/// Reads one binary frame off a raw stream.
fn read_frame(reader: &mut impl Read) -> String {
    let mut header = [0u8; FRAME_HEADER];
    reader.read_exact(&mut header).expect("frame header");
    assert_eq!(header[0], FRAME_MAGIC, "response must be framed");
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("frame payload");
    String::from_utf8(payload).expect("utf-8 payload")
}

/// K pipelined line-JSON requests written back-to-back arrive as K
/// responses in request order, even though they execute on concurrent
/// worker threads.
#[test]
fn pipelined_line_requests_answer_in_order() {
    let (addr, h) = start(ServerConfig::default().with_slots(4));

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    // Heterogeneous batch so out-of-order answers are distinguishable:
    // a malformed request, a query, stats, then the same query (which
    // may hit the cache). One write, no reads until all are sent.
    let query = query_line("A ov B", &[("A", A), ("B", B)], "");
    let batch = format!("this is not json\n{query}\n{{\"op\":\"stats\"}}\n{query}\n");
    stream.write_all(batch.as_bytes()).expect("write batch");

    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        assert!(line.ends_with('\n'), "complete response line");
        lines.push(line.trim_end().to_string());
    }
    let docs: Vec<Json> = lines
        .iter()
        .map(|l| json::parse(l).expect("response json"))
        .collect();
    assert_eq!(
        docs[0].get("error").and_then(Json::as_str),
        Some("bad_request"),
        "first response answers the malformed first request: {}",
        lines[0]
    );
    assert_eq!(docs[1].get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        docs[1].get("tuple_count").is_some(),
        "second response is the query's: {}",
        lines[1]
    );
    assert!(
        docs[2].get("queries").is_some(),
        "third response is stats: {}",
        lines[2]
    );
    assert_eq!(
        docs[3].get("tuple_count").and_then(Json::as_f64),
        docs[1].get("tuple_count").and_then(Json::as_f64),
        "fourth response repeats the query"
    );
    stop(&addr, h);
}

/// The same pipelining guarantee over the binary framing: K frames
/// written back-to-back come back as K frames in order.
#[test]
fn pipelined_binary_frames_answer_in_order() {
    let (addr, h) = start(ServerConfig::default().with_slots(4));

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    let query = query_line("A ov B", &[("A", A), ("B", B)], "");
    let requests: [&str; 3] = [&query, "{\"op\":\"stats\"}", &query];
    let mut wire = Vec::new();
    for r in requests {
        encode_frame(r.as_bytes(), &mut wire);
    }
    stream.write_all(&wire).expect("write frames");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let first = json::parse(&read_frame(&mut reader)).expect("json");
    let second = json::parse(&read_frame(&mut reader)).expect("json");
    let third = json::parse(&read_frame(&mut reader)).expect("json");
    assert!(first.get("tuple_count").is_some(), "query answer first");
    assert!(second.get("queries").is_some(), "stats answer second");
    assert_eq!(
        third.get("tuple_count").and_then(Json::as_f64),
        first.get("tuple_count").and_then(Json::as_f64),
        "query answer third"
    );
    stop(&addr, h);
}

/// A binary-proto client and a line-proto client get identical logical
/// results from one server, and `Proto::Auto` settles on binary.
#[test]
fn binary_and_line_clients_agree() {
    let (addr, h) = start(ServerConfig::default());
    let line = query_line("A ov B", &[("A", A), ("B", B)], "");

    let mut line_client = Client::connect(&addr).expect("line connect");
    let line_doc = json::parse(&line_client.request(&line).expect("line request")).expect("json");

    let mut bin_client =
        Client::with_config(&addr, ClientConfig::default().with_proto(Proto::Binary))
            .expect("binary connect");
    let bin_doc = json::parse(&bin_client.request(&line).expect("binary request")).expect("json");

    let mut auto_client =
        Client::with_config(&addr, ClientConfig::default().with_proto(Proto::Auto))
            .expect("auto connect");
    let auto_doc = json::parse(&auto_client.request(&line).expect("auto request")).expect("json");
    // A second request on the settled connection still answers.
    let again = json::parse(&auto_client.request(&line).expect("auto again")).expect("json");

    for doc in [&bin_doc, &auto_doc, &again] {
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("tuple_count").and_then(Json::as_f64),
            line_doc.get("tuple_count").and_then(Json::as_f64),
            "all protocols see the same result"
        );
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            line_doc.get("fingerprint").and_then(Json::as_str),
        );
    }
    stop(&addr, h);
}

/// Against a server pinned to the line protocol, `Proto::Auto` falls
/// back: the newline-tailed probe gets a line-JSON error, the client
/// reconnects on line JSON, and the request still answers.
#[test]
fn auto_client_falls_back_against_a_line_only_server() {
    let (addr, h) = start(ServerConfig::default().with_proto(ProtoPolicy::LineOnly));

    let mut auto_client =
        Client::with_config(&addr, ClientConfig::default().with_proto(Proto::Auto))
            .expect("auto connect");
    let doc = json::parse(
        &auto_client
            .request("{\"op\":\"stats\"}")
            .expect("fallback request"),
    )
    .expect("json");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert!(doc.get("queries").is_some());
    stop(&addr, h);
}

/// A frame whose header declares a payload beyond the configured bound
/// is rejected with a typed `bad_request` — sequenced after any earlier
/// pipelined responses — and the connection is closed and counted as an
/// eviction.
#[test]
fn oversize_frame_gets_a_typed_error_then_the_door() {
    let (addr, h) = start(ServerConfig::default().with_max_request_line(256));

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    // A good frame first, then a header declaring 1 MiB: the good
    // request's response must come back first, then the typed error.
    let mut wire = Vec::new();
    encode_frame(b"{\"op\":\"stats\"}", &mut wire);
    wire.push(FRAME_MAGIC);
    wire.extend_from_slice(&(1u32 << 20).to_le_bytes());
    stream.write_all(&wire).expect("write");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let stats = json::parse(&read_frame(&mut reader)).expect("stats json");
    assert!(stats.get("queries").is_some(), "pipelined stats first");
    let err = json::parse(&read_frame(&mut reader)).expect("error json");
    assert_eq!(err.get("error").and_then(Json::as_str), Some("bad_request"));
    assert!(
        err.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("maximum")),
        "typed oversize message: {err:?}"
    );
    // Then EOF: the connection is closed.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "no bytes after the error");

    // The close was counted as an eviction.
    let mut c = Client::connect(&addr).expect("connect");
    let stats = json::parse(&c.request("{\"op\":\"stats\"}").expect("stats")).expect("json");
    assert!(
        stats.get("evicted").and_then(Json::as_f64) >= Some(1.0),
        "oversize close counts as eviction: {stats:?}"
    );
    stop(&addr, h);
}

/// A request without a trailing newline followed by a write-side close
/// (EOF) is still parsed, executed, and answered before the server
/// closes its side — no request is silently dropped at half-close.
#[test]
fn half_close_remnant_request_is_still_answered() {
    let (addr, h) = start(ServerConfig::default());

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    (&stream)
        .write_all(b"{\"op\":\"stats\"}")
        .expect("write remnant");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    let doc = json::parse(line.trim_end()).expect("json");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert!(doc.get("queries").is_some(), "remnant stats answered");
    stop(&addr, h);
}

/// Many concurrent connections each pipeline a burst; every connection
/// sees its own responses, in its own order.
#[test]
fn concurrent_pipelined_connections_stay_isolated() {
    let (addr, h) = start(ServerConfig::default().with_slots(4));

    thread::scope(|scope| {
        for _ in 0..16 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
                let batch = "{\"op\":\"stats\"}\n".repeat(8);
                stream.write_all(batch.as_bytes()).expect("write batch");
                let mut reader = BufReader::new(stream);
                for _ in 0..8 {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("response line");
                    let doc = json::parse(line.trim_end()).expect("json");
                    assert!(doc.get("queries").is_some());
                }
            });
        }
    });
    stop(&addr, h);
}
