//! Determinism suite for the sorted-run shuffle.
//!
//! The engine's k-way merge of mapper-sorted spill runs must be
//! *observationally identical* to the simplest possible shuffle: emit every
//! pair single-threaded in input order, stable-sort each partition by key,
//! group adjacent equal keys. Whatever the chunking, the thread count, the
//! reducer count, or the fault plan, every reducer must see the same keys in
//! the same order with byte-identical value streams, and the logical
//! counters (`kv` pairs, shuffle bytes, groups) must not move.

use mwsj_mapreduce::{Engine, EngineConfig, FaultPlan, JobMetrics, JobSpec};
use proptest::prelude::*;

/// Deterministic pseudo-random records (SplitMix64).
fn synth(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// The job's mapper: two emits per record so key groups carry several
/// values and partitions fill unevenly.
fn map_pairs(x: &u64, emit: &mut dyn FnMut(u64, u64)) {
    emit(x % 97, *x);
    emit((x >> 7) % 61, x.wrapping_mul(3));
}

fn route(k: &u64, n: usize) -> usize {
    usize::try_from(*k).expect("small key") % n
}

/// The reference shuffle the engine must match: single-threaded, emits in
/// input order, one *stable* sort per partition (so equal keys keep emit
/// order), adjacent grouping. No runs, no tags, no merge — nothing shared
/// with the engine implementation.
fn reference_shuffle(input: &[u64], reducers: usize) -> Vec<(u64, Vec<u64>)> {
    let mut parts: Vec<Vec<(u64, u64)>> = (0..reducers).map(|_| Vec::new()).collect();
    for record in input {
        map_pairs(record, &mut |k, v| parts[route(&k, reducers)].push((k, v)));
    }
    let mut out = Vec::new();
    for mut part in parts {
        part.sort_by_key(|a| a.0); // stable: equal keys keep emit order
        let mut groups: Vec<(u64, Vec<u64>)> = Vec::new();
        for (k, v) in part {
            match groups.last_mut() {
                Some((g, vs)) if *g == k => vs.push(v),
                _ => groups.push((k, vec![v])),
            }
        }
        out.extend(groups);
    }
    out
}

/// Runs the job on a real engine and returns the reducers' view of the
/// shuffle — `(key, value-stream)` in partition order, key order within —
/// plus the job's metrics.
fn engine_shuffle(
    map_tasks: usize,
    reduce_tasks: usize,
    reducers: usize,
    plan: Option<FaultPlan>,
    input: &[u64],
) -> (Vec<(u64, Vec<u64>)>, JobMetrics) {
    let e = Engine::new(EngineConfig {
        map_tasks,
        reduce_tasks,
        fault_plan: plan,
        ..EngineConfig::default()
    });
    let out = e
        .run(
            JobSpec::new("shuffle-determinism")
                .reducers(reducers)
                .map(|x: &u64, emit| map_pairs(x, emit))
                .partition(route)
                .reduce(|&k: &u64, vs: &[u64], out| out((k, vs.to_vec()))),
            input,
        )
        .expect("fault-free or within attempt budget");
    let metrics = e.report().jobs[0].clone();
    (out, metrics)
}

/// Logical (data-dependent) counters that must be byte-identical across
/// every configuration and fault plan.
fn logical(m: &JobMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.map_input_records,
        m.map_output_records,
        m.shuffle_bytes,
        m.reduce_input_records,
        m.reduce_input_groups,
        m.reduce_output_records,
    )
}

/// The merged shuffle equals the single-threaded reference for every
/// combination of seed, reducer count and map parallelism — the (task,
/// emit-sequence) tag order coincides with global input order whatever the
/// chunking, so even the *value streams* are chunking-invariant.
#[test]
fn matches_single_threaded_reference_across_configs() {
    for seed in [1u64, 42, 1234] {
        let input = synth(2_000, seed);
        for reducers in [1usize, 3, 8] {
            let expect = reference_shuffle(&input, reducers);
            let mut counters = None;
            for map_tasks in [1usize, 2, 4, 8] {
                for reduce_tasks in [1usize, 4] {
                    let (got, m) = engine_shuffle(map_tasks, reduce_tasks, reducers, None, &input);
                    assert_eq!(
                        got, expect,
                        "seed {seed}, {reducers} reducers, {map_tasks} map / \
                         {reduce_tasks} reduce threads deviates from the reference"
                    );
                    let l = logical(&m);
                    assert_eq!(*counters.get_or_insert(l), l, "counters drift with threads");
                }
            }
        }
    }
}

/// Retried and speculative attempts must commit byte-identical output:
/// under a chaos fault plan the reducers' view of the shuffle — and every
/// logical counter, including the deterministic spill-run count — equals
/// the fault-free run's.
#[test]
fn chaos_runs_commit_identical_shuffles() {
    let input = synth(3_000, 7);
    let (clean, clean_m) = engine_shuffle(4, 4, 8, None, &input);
    assert_eq!(clean, reference_shuffle(&input, 8));

    for fault_seed in [3u64, 77, 2024] {
        let mut plan = FaultPlan::chaos(fault_seed, 0.25, 0.1).with_max_attempts(8);
        plan.straggler_delay = std::time::Duration::from_millis(1);
        let (faulty, faulty_m) = engine_shuffle(4, 4, 8, Some(plan), &input);
        assert_eq!(
            faulty, clean,
            "value streams drift under fault seed {fault_seed}"
        );
        assert_eq!(logical(&faulty_m), logical(&clean_m));
        assert_eq!(
            faulty_m.spill_runs, clean_m.spill_runs,
            "a retried map task must commit exactly one set of runs"
        );
        assert!(
            faulty_m.retries > 0 || faulty_m.speculative_launched > 0,
            "fault seed {fault_seed} injected nothing"
        );
    }
}

/// The ≤ 1-run fast path (no heap) and the k-way path agree: a job small
/// enough for a single map chunk produces exactly one spill run per
/// non-empty partition and still matches the reference.
#[test]
fn single_run_fast_path_matches_reference() {
    let input = synth(1, 9); // one record → one chunk at any parallelism
    let (got, m) = engine_shuffle(1, 1, 1, None, &input);
    assert_eq!(got, reference_shuffle(&input, 1));
    assert_eq!(m.spill_runs, 1, "one map task, one non-empty partition");

    // Larger single-reducer job: every map task contributes one run to the
    // only partition, so the merge is a genuine k-way.
    let input = synth(500, 9);
    let (got, m) = engine_shuffle(4, 2, 1, None, &input);
    assert_eq!(got, reference_shuffle(&input, 1));
    assert!(m.spill_runs > 1, "multiple chunks must spill multiple runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: the group slices handed to reducers partition the merged
    /// partition exactly — strictly increasing keys within each partition,
    /// every merged record in exactly one group — and the whole thing
    /// equals the single-threaded reference.
    #[test]
    fn prop_group_slices_partition_merged_input(
        n in 0usize..300,
        seed in 0u64..1_000,
        reducers in 1usize..9,
        map_tasks in 1usize..5,
    ) {
        let input = synth(n, seed);
        let (got, m) = engine_shuffle(map_tasks, 2, reducers, None, &input);
        prop_assert_eq!(&got, &reference_shuffle(&input, reducers));

        // Strictly increasing keys within each partition: no split or
        // duplicated group anywhere.
        for p in 0..reducers {
            let keys: Vec<u64> = got
                .iter()
                .map(|(k, _)| *k)
                .filter(|k| route(k, reducers) == p)
                .collect();
            prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }

        // The slices cover every merged record exactly once.
        let covered: u64 = got.iter().map(|(_, vs)| vs.len() as u64).sum();
        prop_assert_eq!(covered, m.reduce_input_records);
        prop_assert_eq!(m.reduce_input_records, 2 * n as u64);
        prop_assert_eq!(got.len() as u64, m.reduce_input_groups);
    }
}
