//! Chaos suite: fault tolerance must be *invisible* above the engine.
//!
//! Under a random [`FaultPlan`] — failed task attempts, stragglers with
//! speculative re-execution, transient DFS read failures — every algorithm
//! must still produce exactly the brute-force join result, and the logical
//! metrics (record and byte counters) must be identical to the fault-free
//! run: a retried task never double-emits, a failed attempt never commits
//! partial output. Only when a task exhausts its attempt budget may a run
//! fail — and then with a structured [`JoinError`], not a process abort.

use mwsj_core::mapreduce::{
    CancelToken, FaultInjector, FaultPlan, ForcedFault, JobErrorKind, Phase, TraceSink,
};
use mwsj_core::{reference, Algorithm, Cluster, ClusterConfig, JoinError, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;

fn synthetic(n: usize, seed: u64) -> Vec<Rect> {
    mwsj_datagen::SyntheticConfig::paper_default(n, seed).generate()
}

/// A cluster with *pinned* engine parallelism, so the number of map chunks
/// — and with it every deterministic fault decision — is identical on
/// every machine.
fn cluster_with(plan: Option<FaultPlan>) -> Cluster {
    let mut config = ClusterConfig::for_space((0.0, 100_000.0), (0.0, 100_000.0), 8);
    config.engine.map_tasks = 4;
    config.engine.reduce_tasks = 4;
    config.engine.fault_plan = plan;
    Cluster::new(config)
}

fn chain_query() -> Query {
    Query::builder()
        .overlap("R1", "R2")
        .range("R2", "R3", 300.0)
        .build()
        .unwrap()
}

#[test]
fn all_algorithms_match_brute_force_under_random_faults() {
    let q = chain_query();
    let r1 = synthetic(4_000, 91);
    let r2 = synthetic(4_000, 92);
    let r3 = synthetic(4_000, 93);
    let expected = reference::in_memory_join(&q, &[&r1, &r2, &r3]);
    assert!(!expected.is_empty());

    for fault_seed in [7, 1234] {
        // An eight-attempt budget keeps the probability of any task
        // exhausting it negligible (0.2^8) while injecting plenty of
        // retries across the suite's hundreds of tasks.
        let plan = FaultPlan::chaos(fault_seed, 0.2, 0.05).with_max_attempts(8);
        for alg in Algorithm::ALL {
            let cl = cluster_with(Some(plan.clone()));
            let out = cl.run(&q, &[&r1, &r2, &r3], alg);
            assert_eq!(
                out.tuples,
                expected,
                "{} deviates under fault seed {fault_seed}",
                alg.name()
            );
        }
    }
}

#[test]
fn logical_counters_identical_with_and_without_faults() {
    let q = chain_query();
    let r1 = synthetic(2_000, 101);
    let r2 = synthetic(2_000, 102);
    let r3 = synthetic(2_000, 103);

    let clean = cluster_with(None).run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    let faulty = cluster_with(Some(FaultPlan::chaos(42, 0.25, 0.1).with_max_attempts(8))).run(
        &q,
        &[&r1, &r2, &r3],
        Algorithm::ControlledReplicate,
    );

    assert_eq!(faulty.tuples, clean.tuples);
    assert_eq!(
        clean.report.num_jobs(),
        faulty.report.num_jobs(),
        "fault tolerance must not add or drop jobs"
    );
    for (c, f) in clean.report.jobs.iter().zip(&faulty.report.jobs) {
        assert_eq!(c.map_input_records, f.map_input_records, "{}", c.job_name);
        assert_eq!(c.map_output_records, f.map_output_records, "{}", c.job_name);
        assert_eq!(c.shuffle_bytes, f.shuffle_bytes, "{}", c.job_name);
        assert_eq!(
            c.reduce_input_groups, f.reduce_input_groups,
            "{}",
            c.job_name
        );
        assert_eq!(
            c.reduce_input_records, f.reduce_input_records,
            "{}",
            c.job_name
        );
        assert_eq!(
            c.reduce_output_records, f.reduce_output_records,
            "{}",
            c.job_name
        );
        // Fault-free runs keep the fault counters at zero.
        assert_eq!(c.retries, 0);
        assert_eq!(c.map_task_failures + c.reduce_task_failures, 0);
    }
    // Successful DFS reads are charged identically; failed ones are free.
    assert_eq!(clean.report.dfs_read_bytes, faulty.report.dfs_read_bytes);
    assert_eq!(clean.report.dfs_write_bytes, faulty.report.dfs_write_bytes);
    assert_eq!(clean.report.dfs_transient_read_failures, 0);

    // The chaos plan must actually have bitten for this test to mean
    // anything: at a 25% attempt-failure rate over dozens of tasks, some
    // retries are statistically certain (and deterministic per seed).
    let total_retries: u64 = faulty.report.jobs.iter().map(|j| j.retries).sum();
    assert!(total_retries > 0, "fault plan injected nothing");
}

/// The ISSUE's surgical case: exactly one map failure and one reduce
/// failure, each retried once — all logical counters byte-identical to the
/// fault-free run, `retries == 2`.
#[test]
fn one_map_and_one_reduce_failure_retry_without_trace() {
    let q = chain_query();
    let r1 = synthetic(1_000, 111);
    let r2 = synthetic(1_000, 112);
    let r3 = synthetic(1_000, 113);

    let plan = FaultPlan::none().with_forced(vec![
        ForcedFault {
            phase: Phase::Map,
            task: 0,
            attempts: 1,
        },
        ForcedFault {
            phase: Phase::Reduce,
            task: 1,
            attempts: 1,
        },
    ]);

    // All-Replicate runs exactly one job, so the forced faults fire once.
    let clean = cluster_with(None).run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    let faulty = cluster_with(Some(plan)).run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);

    assert_eq!(faulty.tuples, clean.tuples);
    let (c, f) = (&clean.report.jobs[0], &faulty.report.jobs[0]);
    assert_eq!(f.map_output_records, c.map_output_records);
    assert_eq!(f.shuffle_bytes, c.shuffle_bytes);
    assert_eq!(f.reduce_output_records, c.reduce_output_records);
    assert_eq!(f.map_task_failures, 1);
    assert_eq!(f.reduce_task_failures, 1);
    assert_eq!(f.retries, 2);
}

/// A task forced past `max_attempts` fails the *join* with a structured
/// error naming the phase and task — the process, and the cluster, live on.
#[test]
fn exhausted_attempts_surface_join_error_not_abort() {
    let q = chain_query();
    let r1 = synthetic(400, 121);
    let r2 = synthetic(400, 122);
    let r3 = synthetic(400, 123);

    let plan = FaultPlan::none()
        .with_forced(vec![ForcedFault {
            phase: Phase::Reduce,
            task: 2,
            attempts: u32::MAX,
        }])
        .with_max_attempts(3);
    let cl = cluster_with(Some(plan));

    let err = cl
        .submit(&JoinRun::new(&q, &[&r1, &r2, &r3]).algorithm(Algorithm::AllReplicate))
        .unwrap_err();
    match &err {
        JoinError::Job(e) => {
            assert_eq!(e.phase, Phase::Reduce);
            assert_eq!(e.task, 2);
            assert_eq!(e.attempts, 3);
        }
        JoinError::Dfs(e) => panic!("expected a job error, got DFS error {e}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("reduce task 2") && msg.contains("3 attempts"),
        "error must name phase, task and attempts: {msg}"
    );

    // The cluster is still usable: the same join without the fault plan's
    // doomed task succeeds.
    let ok = cluster_with(None).run(&q, &[&r1, &r2, &r3], Algorithm::AllReplicate);
    assert_eq!(ok.tuples, reference::in_memory_join(&q, &[&r1, &r2, &r3]));
}

/// Count-only runs must not tally through side effects: a retried or
/// speculative reduce attempt re-runs the user closure, and anything it
/// adds to shared state outside the commit protocol is double-counted.
/// Counts must ride the committed output, so `tuple_count` is identical
/// with and without faults — this is what `assert_same_results` in the
/// bench harness checks across algorithms.
#[test]
fn count_only_tuple_counts_survive_retries_and_speculation() {
    let q = chain_query();
    let r1 = synthetic(4_000, 141);
    let r2 = synthetic(4_000, 142);
    let r3 = synthetic(4_000, 143);

    // Both failure retries and straggler speculation, to exercise every
    // path that re-runs a reduce closure.
    let mut plan = FaultPlan::chaos(9, 0.2, 0.1).with_max_attempts(8);
    plan.straggler_delay = std::time::Duration::from_millis(1);

    for alg in Algorithm::ALL {
        let counting = |rels: &Cluster| {
            rels.submit(&JoinRun::new(&q, &[&r1, &r2, &r3]).algorithm(alg).counting())
        };
        let clean = counting(&cluster_with(None)).unwrap();
        let faulty = counting(&cluster_with(Some(plan.clone()))).unwrap();
        assert!(clean.tuples.is_empty() && faulty.tuples.is_empty());
        assert!(clean.tuple_count > 0);
        assert_eq!(
            faulty.tuple_count,
            clean.tuple_count,
            "{} count drifts under faults",
            alg.name()
        );
        let retries: u64 = faulty.report.jobs.iter().map(|j| j.retries).sum();
        assert!(retries > 0, "{}: fault plan injected nothing", alg.name());
    }
}

/// Cancellation composes with fault injection: cancelling one run mid-way
/// on a shared cluster under an active chaos plan must (a) surface a
/// `Cancelled` error that is never retried, (b) stop scheduling work — no
/// stray task attempts after the error returns, (c) hand every worker
/// slot back, and (d) leave a concurrently-running survivor's logical
/// counters byte-identical to a solo fault-free run.
#[test]
fn cancel_mid_run_under_faults_releases_slots_and_leaves_survivors_exact() {
    let q = chain_query();
    // Big enough that the doomed run is still in its map phase when the
    // cancel lands.
    let big1 = synthetic(20_000, 151);
    let big2 = synthetic(20_000, 152);
    let big3 = synthetic(20_000, 153);
    let s1 = synthetic(2_000, 101);
    let s2 = synthetic(2_000, 102);
    let s3 = synthetic(2_000, 103);

    let plan = FaultPlan::chaos(11, 0.2, 0.05).with_max_attempts(8);
    let cl = cluster_with(Some(plan));
    let trace = TraceSink::recording();
    let token = CancelToken::new();
    let (doomed, survivor) = std::thread::scope(|s| {
        let doomed = s.spawn(|| {
            cl.submit(
                &JoinRun::new(&q, &[&big1, &big2, &big3])
                    .algorithm(Algorithm::ControlledReplicate)
                    .cancel(token.clone())
                    .trace(trace.clone()),
            )
        });
        let survivor = s.spawn(|| {
            cl.submit(&JoinRun::new(&q, &[&s1, &s2, &s3]).algorithm(Algorithm::ControlledReplicate))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.cancel();
        (doomed.join().unwrap(), survivor.join().unwrap())
    });

    match doomed.expect_err("cancelled run must fail") {
        JoinError::Job(e) => {
            assert!(
                matches!(
                    e.kind,
                    JobErrorKind::Cancelled {
                        deadline_exceeded: false
                    }
                ),
                "expected a caller cancel, got {e}"
            );
            assert!(e.to_string().contains("by caller"), "{e}");
        }
        JoinError::Dfs(e) => panic!("expected a cancelled job error, got DFS error {e}"),
    }

    // (b) No stray attempts: once the error surfaced, the doomed run's
    // trace must have stopped growing.
    let settled = trace.len();
    std::thread::sleep(std::time::Duration::from_millis(80));
    assert_eq!(trace.len(), settled, "task attempts ran after the cancel");

    // (c) Every slot is back in the pool.
    let scheduler = cl.engine().scheduler();
    assert_eq!(scheduler.available(), scheduler.slots());

    // (d) The survivor is untouched: identical tuples and logical
    // counters to a solo run on a fault-free cluster.
    let survivor = survivor.expect("survivor run failed");
    let clean = cluster_with(None).run(&q, &[&s1, &s2, &s3], Algorithm::ControlledReplicate);
    assert_eq!(survivor.tuples, clean.tuples);
    assert_eq!(survivor.report.num_jobs(), clean.report.num_jobs());
    for (c, f) in clean.report.jobs.iter().zip(&survivor.report.jobs) {
        assert_eq!(c.map_input_records, f.map_input_records, "{}", c.job_name);
        assert_eq!(c.map_output_records, f.map_output_records, "{}", c.job_name);
        assert_eq!(c.shuffle_bytes, f.shuffle_bytes, "{}", c.job_name);
        assert_eq!(
            c.reduce_input_records, f.reduce_input_records,
            "{}",
            c.job_name
        );
        assert_eq!(
            c.reduce_output_records, f.reduce_output_records,
            "{}",
            c.job_name
        );
    }
}

/// Checksummed spills: a corrupt committed run is detected on shuffle
/// open and repaired by re-executing the *producing* map attempt. The
/// repair must be invisible — identical tuples and byte-identical
/// logical counters (including `spill_runs` and the input fingerprint,
/// charged only at original commit) — while the `corrupt_runs` counter
/// records every detection.
#[test]
fn corrupt_spill_runs_repair_to_byte_identical_counters() {
    let q = chain_query();
    let r1 = synthetic(2_000, 161);
    let r2 = synthetic(2_000, 162);
    let r3 = synthetic(2_000, 163);

    let clean = cluster_with(None).run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);
    // Attempt failures *and* spill corruption together: recovery re-runs
    // draw fresh failure faults, so the two retry paths compose.
    let plan = FaultPlan::chaos(23, 0.1, 0.0)
        .with_corruption(0.05)
        .with_max_attempts(8);
    let faulty = cluster_with(Some(plan)).run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicate);

    assert_eq!(faulty.tuples, clean.tuples);
    assert_eq!(clean.report.num_jobs(), faulty.report.num_jobs());
    for (c, f) in clean.report.jobs.iter().zip(&faulty.report.jobs) {
        assert_eq!(c.map_input_records, f.map_input_records, "{}", c.job_name);
        assert_eq!(c.map_output_records, f.map_output_records, "{}", c.job_name);
        assert_eq!(c.shuffle_bytes, f.shuffle_bytes, "{}", c.job_name);
        assert_eq!(c.spill_runs, f.spill_runs, "{}", c.job_name);
        assert_eq!(
            c.reduce_input_records, f.reduce_input_records,
            "{}",
            c.job_name
        );
        assert_eq!(
            c.reduce_output_records, f.reduce_output_records,
            "{}",
            c.job_name
        );
        assert_eq!(c.input_fingerprint, f.input_fingerprint, "{}", c.job_name);
        assert_eq!(c.corrupt_runs, 0, "clean runs must report zero corruption");
    }
    let repaired: u64 = faulty.report.jobs.iter().map(|j| j.corrupt_runs).sum();
    assert!(repaired > 0, "corruption plan injected nothing");
}

/// Speculative execution races duplicate attempts for straggling tasks and
/// commits whichever finishes first — without perturbing results or
/// logical counters.
#[test]
fn heavy_speculation_does_not_perturb_results() {
    let q = chain_query();
    let r1 = synthetic(800, 131);
    let r2 = synthetic(800, 132);
    let r3 = synthetic(800, 133);

    let mut plan = FaultPlan::chaos(5, 0.0, 1.0);
    plan.straggler_delay = std::time::Duration::from_millis(1);
    let clean = cluster_with(None).run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);
    let slow =
        cluster_with(Some(plan)).run(&q, &[&r1, &r2, &r3], Algorithm::ControlledReplicateLimit);

    assert_eq!(slow.tuples, clean.tuples);
    let launched: u64 = slow
        .report
        .jobs
        .iter()
        .map(|j| j.speculative_launched)
        .sum();
    assert!(launched > 0, "straggler rate 1.0 must launch speculation");
    for (c, f) in clean.report.jobs.iter().zip(&slow.report.jobs) {
        assert_eq!(c.map_output_records, f.map_output_records);
        assert_eq!(c.reduce_output_records, f.reduce_output_records);
    }
}

/// The on-disk dataset store shares the engine's at-rest integrity
/// discipline: driving file tampering with the *same*
/// [`FaultPlan::with_corruption`] decisions the spill-run repair path
/// uses, every corrupted store image must be rejected on open — a
/// map-side join can never silently read flipped bits.
#[test]
fn stored_datasets_detect_fault_plan_corruption() {
    use mwsj_core::store::{StoreBuilder, StoredDataset};

    let rects = synthetic(500, 171);
    let grid = mwsj_core::partition::Grid::square((0.0, 100_000.0), (0.0, 100_000.0), 8);
    let bytes = StoreBuilder::new(&grid).build(&rects).expect("ingest");
    assert!(StoredDataset::from_bytes(&bytes).is_ok());

    // Each word of the image plays the role of a committed spill
    // partition: the injector's deterministic draw decides which words
    // rot, exactly as it decides which spill runs rot in the engine.
    let injector = FaultInjector::new(FaultPlan::none().with_corruption(0.03));
    let mut corrupted = 0;
    for w in 0..bytes.len() / 8 {
        if !injector.should_corrupt_run(1, 0, w, 0) {
            continue;
        }
        corrupted += 1;
        let mut bad = bytes.clone();
        bad[w * 8 + (w % 8)] ^= 1 << (w % 8);
        assert!(
            StoredDataset::from_bytes(&bad).is_err(),
            "corrupted word {w} went undetected"
        );
    }
    assert!(corrupted > 0, "corruption plan injected nothing");
}
