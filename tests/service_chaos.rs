//! Chaos tests for the serving tier: concurrent clients against a server
//! whose every connection runs through the deterministic network fault
//! injector, plus the self-defence behaviors — brownout, idle/oversize
//! eviction, and SIGTERM drain-then-cancel.
//!
//! Every test here serializes on one lock: the SIGTERM tests flip a
//! *process-global* signal latch that would stop every other test's
//! server if they ran on parallel test threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use mwsj_core::mapreduce::NetFaultPlan;
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;
use mwsj_server::json::{self, Json};
use mwsj_server::source::load_source;
use mwsj_server::{signal, Client, ClientConfig, Server, ServerConfig};

/// The space every test server uses (the `ServerConfig` default).
const EXTENT: f64 = 100_000.0;

/// Serializes the whole suite (see module docs). Poisoning is harmless —
/// the lock carries no data.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    signal::reset(); // a prior test's latch must not stop this one's server
    guard
}

fn start(config: ServerConfig) -> (String, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// Stops a server whose connections may be fault-injected: keeps sending
/// `shutdown` on fresh connections until the accept loop exits.
fn stop_resilient(addr: &str, handle: thread::JoinHandle<()>) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !handle.is_finished() {
        if let Ok(mut c) = Client::with_config(addr, client_config(0)) {
            let _ = c.request("{\"op\":\"shutdown\"}");
        }
        assert!(Instant::now() < deadline, "server did not stop");
        thread::sleep(Duration::from_millis(50));
    }
    handle.join().expect("server thread");
}

/// Short client timeouts so an injected stall or disconnect surfaces as a
/// typed error in bounded time instead of hanging the test.
fn client_config(seed: u64) -> ClientConfig {
    ClientConfig::default()
        .with_read_timeout(Duration::from_secs(30))
        .with_seed(seed)
}

fn query_line(query: &str, data: &[(&str, &str)], extra: &str) -> String {
    let bindings: Vec<String> = data
        .iter()
        .map(|(name, spec)| format!("\"{name}\":\"{spec}\""))
        .collect();
    format!(
        "{{\"op\":\"query\",\"query\":\"{query}\",\"data\":{{{}}}{extra}}}",
        bindings.join(",")
    )
}

fn tuples_of(doc: &Json) -> Vec<Vec<u32>> {
    doc.get("tuples")
        .and_then(Json::as_arr)
        .expect("tuples array")
        .iter()
        .map(|t| {
            t.as_arr()
                .expect("tuple")
                .iter()
                .map(|v| {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let id = v.as_f64().expect("id") as u32;
                    id
                })
                .collect()
        })
        .collect()
}

/// Ground truth: the same query run directly on a private cluster with
/// the service's space and grid.
fn direct(query: &str, specs: &[&str]) -> (Vec<Vec<u32>>, u64) {
    let q = Query::parse(query).expect("query");
    let datasets: Vec<Vec<Rect>> = specs
        .iter()
        .map(|s| load_source(s).expect("load"))
        .collect();
    let refs: Vec<&[Rect]> = datasets.iter().map(Vec::as_slice).collect();
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, EXTENT), (0.0, EXTENT), 8));
    let out = cluster
        .submit(&JoinRun::new(&q, &refs).algorithm(Algorithm::ControlledReplicate))
        .expect("direct join");
    (out.tuples, out.tuple_count)
}

const A: &str = "synthetic:n=800,seed=11,extent=5000,lmax=300";
const B: &str = "synthetic:n=800,seed=12,extent=5000,lmax=300";
const C: &str = "synthetic:n=800,seed=13,extent=5000,lmax=300";

/// Retrieves `stats` through injected faults (retrying client).
fn stats_resilient(addr: &str) -> Json {
    let mut c = Client::with_config(
        addr,
        client_config(99).with_retries(8, Duration::from_millis(20)),
    )
    .expect("stats connect");
    let text = c
        .request_idempotent("{\"op\":\"stats\"}")
        .expect("stats response");
    json::parse(&text).expect("stats json")
}

/// The tentpole assertion: under a pinned network-fault seed, concurrent
/// clients either become casualties (typed error, timeout, dead
/// connection) or *survivors* — and every survivor's response is
/// byte-identical to a direct `Cluster::submit` of its query. Afterwards
/// no scheduler slot may be leaked.
#[test]
fn chaos_survivors_get_byte_identical_results_and_no_slots_leak() {
    let _guard = serial();
    let queries: [(&str, [&str; 2]); 2] = [
        ("A ov B", [A, B]),
        ("A ov B", [B, C]), // same shape, different data
    ];
    let expected: Vec<(Vec<Vec<u32>>, u64)> =
        queries.iter().map(|(q, specs)| direct(q, specs)).collect();
    assert!(expected.iter().all(|(_, n)| *n > 0));

    let (addr, h) = start(
        ServerConfig::default()
            .with_slots(4)
            .with_admission(8, 8)
            .with_net_faults(NetFaultPlan::chaos(4242, 0.04)),
    );

    let survivors = AtomicUsize::new(0);
    let casualties = AtomicUsize::new(0);
    let mismatches = AtomicUsize::new(0);
    thread::scope(|scope| {
        for client_id in 0..8usize {
            let (query, specs) = &queries[client_id % queries.len()];
            let (want_tuples, want_count) = &expected[client_id % queries.len()];
            let addr = addr.clone();
            let line = query_line(
                query,
                &[("A", specs[0]), ("B", specs[1])],
                ",\"algorithm\":\"crep\"",
            );
            let survivors = &survivors;
            let casualties = &casualties;
            let mismatches = &mismatches;
            scope.spawn(move || {
                // Each attempt uses a fresh connection: a torn frame or
                // injected disconnect kills the old one for good.
                for attempt in 0..6u64 {
                    let seed = client_id as u64 * 16 + attempt;
                    let Ok(mut c) = Client::with_config(&addr, client_config(seed)) else {
                        continue;
                    };
                    let Ok(text) = c.request(&line) else {
                        continue;
                    };
                    let Ok(doc) = json::parse(&text) else {
                        // A response mangled in flight would show up here —
                        // but corruption is inbound-only by design, so a
                        // parse failure is a real bug.
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
                        // Typed error (e.g. a corrupted request byte made
                        // it a bad_request, or admission shed it). Retry.
                        continue;
                    }
                    let count = doc.get("tuple_count").and_then(Json::as_f64);
                    #[allow(clippy::cast_precision_loss)]
                    let count_ok = count == Some(*want_count as f64);
                    if tuples_of(&doc) == *want_tuples && count_ok {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    } else {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                casualties.fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every ok-response must be byte-identical to the direct run"
    );
    assert!(
        survivors.load(Ordering::Relaxed) >= 1,
        "a 4% fault rate with 6 attempts must leave survivors \
         ({} casualties)",
        casualties.load(Ordering::Relaxed)
    );

    // No leaked scheduler slots: casualties' cancelled runs and injected
    // disconnects must all hand their slots back.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = stats_resilient(&addr);
        let slots = stats.get("slots").and_then(Json::as_f64).expect("slots");
        let available = stats
            .get("slots_available")
            .and_then(Json::as_f64)
            .expect("slots_available");
        if available == slots {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scheduler slots leaked under chaos: {stats:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
    stop_resilient(&addr, h);
}

/// A deliberately heavy request that occupies the join slot for a while.
fn heavy_line(extra: &str) -> String {
    query_line(
        "X ov Y and Y ov Z",
        &[
            ("X", "synthetic:n=300000,seed=31,lmax=250"),
            ("Y", "synthetic:n=300000,seed=32,lmax=250"),
            ("Z", "synthetic:n=300000,seed=33,lmax=250"),
        ],
        extra,
    )
}

/// Brownout: once admission sheds, the service keeps serving cache hits
/// but sheds further misses *immediately* — bounding miss latency while
/// overloaded instead of queueing them behind a saturated engine.
#[test]
fn brownout_serves_cache_hits_and_sheds_misses_fast() {
    let _guard = serial();
    let (addr, h) = start(
        ServerConfig::default()
            .with_slots(2)
            .with_admission(1, 0)
            .with_brownout_window(Duration::from_secs(10)),
    );

    // Prime the cache, and pre-generate the heavy datasets (the 1 ms
    // deadline kills that join immediately).
    let hit_line = query_line("A ov B", &[("A", A), ("B", B)], "");
    {
        let mut c = Client::connect(&addr).expect("connect");
        let warm = c.request(&hit_line).expect("prime cache");
        assert!(warm.contains("\"ok\":true"));
        let _ = c.request(&heavy_line(",\"deadline_ms\":1"));
    }

    // Occupy the only admission slot.
    let occupant = thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).expect("occupant connect");
            c.request(&heavy_line(",\"deadline_ms\":8000"))
                .expect("occupant response")
        }
    });
    thread::sleep(Duration::from_millis(300));

    let mut c = Client::connect(&addr).expect("connect");
    // First miss is shed by the full queue — this arms the brownout.
    let miss_line = query_line("B ov C", &[("B", B), ("C", C)], "");
    let first = json::parse(&c.request(&miss_line).expect("shed response")).unwrap();
    assert_eq!(
        first.get("error").and_then(Json::as_str),
        Some("overloaded")
    );

    // In brownout: misses shed fast, hits still serve.
    for _ in 0..3 {
        let t0 = Instant::now();
        let doc = json::parse(&c.request(&miss_line).expect("brownout response")).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("overloaded"));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "brownout sheds must not wait on the engine"
        );
    }
    let hit = json::parse(&c.request(&hit_line).expect("hit response")).unwrap();
    assert_eq!(hit.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));

    let stats = json::parse(&c.request("{\"op\":\"stats\"}").expect("stats")).unwrap();
    assert!(
        stats
            .get("brownout_sheds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 3.0,
        "brownout sheds must be counted separately: {stats:?}"
    );
    assert_eq!(stats.get("brownout").and_then(Json::as_bool), Some(true));

    occupant.join().expect("occupant thread");
    stop_resilient(&addr, h);
}

/// SIGTERM drain, the happy path: a request in flight when the signal
/// lands still gets its complete `ok` response, then the server exits.
#[test]
fn sigterm_drains_in_flight_requests_to_completion() {
    let _guard = serial();
    let (addr, h) = start(ServerConfig::default().with_drain_deadline(Duration::from_secs(60)));

    // A query heavy enough to still be running when SIGTERM lands.
    let in_flight = thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.request(&query_line(
                "X ov Y",
                &[
                    ("X", "synthetic:n=150000,seed=41,lmax=250"),
                    ("Y", "synthetic:n=150000,seed=42,lmax=250"),
                ],
                "",
            ))
            .expect("in-flight response")
        }
    });
    thread::sleep(Duration::from_millis(150));
    signal::request_shutdown(); // what the SIGTERM handler does

    let response = in_flight.join().expect("in-flight thread");
    let doc = json::parse(&response).expect("in-flight json");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "a request in flight during drain must complete: {response}"
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    while !h.is_finished() {
        assert!(Instant::now() < deadline, "server did not exit after drain");
        thread::sleep(Duration::from_millis(20));
    }
    h.join().expect("clean exit");
    signal::reset();
}

/// SIGTERM drain, the deadline path: when in-flight work outlives the
/// drain deadline, it is cancelled through the engine's token and the
/// client gets a typed `cancelled` response — not a hung connection.
#[test]
fn short_drain_deadline_cancels_stragglers_with_typed_errors() {
    let _guard = serial();
    let (addr, h) = start(
        ServerConfig::default()
            .with_slots(4)
            .with_drain_deadline(Duration::from_millis(100)),
    );

    // Pre-generate the heavy datasets so the run below is pure join time.
    {
        let mut c = Client::connect(&addr).expect("connect");
        let _ = c.request(&heavy_line(",\"deadline_ms\":1"));
    }
    let straggler = thread::spawn({
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.request(&heavy_line("")).expect("straggler response")
        }
    });
    thread::sleep(Duration::from_millis(400)); // join is now in flight
    signal::request_shutdown();

    let response = straggler.join().expect("straggler thread");
    let doc = json::parse(&response).expect("straggler json");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("cancelled"),
        "drain-deadline cancellation must be typed: {response}"
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    while !h.is_finished() {
        assert!(Instant::now() < deadline, "server did not exit");
        thread::sleep(Duration::from_millis(20));
    }
    h.join().expect("clean exit");
    signal::reset();
}

/// The slow-loris defences: an oversized request line is rejected with a
/// typed error and the connection closed; a connection trickling bytes
/// (or idle) past the idle timeout is evicted.
#[test]
fn oversized_lines_and_idle_connections_are_evicted() {
    let _guard = serial();
    let (addr, h) = start(
        ServerConfig::default()
            .with_max_request_line(256)
            .with_idle_timeout(Duration::from_millis(300)),
    );

    // Oversized line: typed rejection, then the connection is closed.
    {
        use std::io::{BufRead as _, BufReader, Write as _};
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let long = format!("{}\n", "x".repeat(4096));
        stream.write_all(long.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("rejection line");
        let doc = json::parse(line.trim_end()).expect("rejection json");
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("bad_request"),
            "{line}"
        );
        // Closed: the next read sees EOF.
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
    }

    // Slow loris: half a request line, then silence. The server evicts.
    {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream.write_all(b"{\"op\":\"sta").expect("send prefix");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut sink = [0u8; 16];
        let n = stream.read(&mut sink).expect("eviction closes the socket");
        assert_eq!(n, 0, "evicted connection must be closed, got data");
    }

    let mut c = Client::connect(&addr).expect("connect");
    let stats = json::parse(&c.request("{\"op\":\"stats\"}").expect("stats")).unwrap();
    assert!(
        stats.get("evicted").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0,
        "both defences must count evictions: {stats:?}"
    );
    stop_resilient(&addr, h);
}

/// Pipelining under chaos: connections that batch several requests
/// back-to-back through the fault injector either die (typed client
/// error, torn line, EOF) or get responses that are byte-identical to
/// the clean direct run — and always in request order. A response line
/// that arrives complete but fails to parse, or parses to the wrong
/// tuples, is a mismatch: corruption is inbound-only by design, so the
/// server must never emit a garbled survivor.
#[test]
fn pipelined_chaos_survivors_stay_byte_identical() {
    use std::io::{BufRead as _, BufReader, Write as _};

    let _guard = serial();
    let (want_tuples, want_count) = direct("A ov B", &[A, B]);
    assert!(want_count > 0);

    let (addr, h) = start(
        ServerConfig::default()
            .with_slots(4)
            .with_admission(8, 16)
            .with_net_faults(NetFaultPlan::chaos(9091, 0.03)),
    );

    let line = query_line("A ov B", &[("A", A), ("B", B)], ",\"algorithm\":\"crep\"");
    let survivors = AtomicUsize::new(0);
    let mismatches = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _conn in 0..6usize {
            let addr = addr.clone();
            let line = &line;
            let want_tuples = &want_tuples;
            let survivors = &survivors;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let Ok(mut stream) = std::net::TcpStream::connect(&addr) else {
                    return; // casualty at connect
                };
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
                // The whole pipeline in one write, no reads in between.
                let batch = format!("{line}\n").repeat(4);
                if stream.write_all(batch.as_bytes()).is_err() {
                    return; // casualty mid-send
                }
                let mut reader = BufReader::new(stream);
                for _ in 0..4 {
                    let mut text = String::new();
                    match reader.read_line(&mut text) {
                        Ok(0) | Err(_) => return,                 // EOF / timeout: casualty
                        Ok(_) if !text.ends_with('\n') => return, // torn line
                        Ok(_) => {}
                    }
                    let Ok(doc) = json::parse(text.trim_end()) else {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        return;
                    };
                    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
                        // Typed error (a corrupted request byte, a shed):
                        // a casualty for this slot, but later pipelined
                        // responses may still arrive — keep reading.
                        continue;
                    }
                    let count = doc.get("tuple_count").and_then(Json::as_f64);
                    #[allow(clippy::cast_precision_loss)]
                    let count_ok = count == Some(want_count as f64);
                    if tuples_of(&doc) == *want_tuples && count_ok {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    } else {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "an intact pipelined response must match the clean direct run"
    );
    assert!(
        survivors.load(Ordering::Relaxed) >= 1,
        "a 3% fault rate across 6x4 pipelined requests must leave survivors"
    );
    stop_resilient(&addr, h);
}
