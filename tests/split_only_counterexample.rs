//! §6.3: *"Why Splitting all Relations does not work"* — executable proof.
//!
//! A 2-way overlap join is correct when both relations are split (§5.2),
//! but a multi-way join is not: members of an output tuple can be pairwise
//! chained without any single cell seeing all of them. This test implements
//! the naive split-everything strategy and demonstrates that it loses
//! exactly the tuples the paper predicts, on both the paper's Figure 3
//! geometry and random workloads.

use mwsj_core::{local, reference, TaggedRect};
use mwsj_geom::Rect;
use mwsj_local::LocalRect;
use mwsj_partition::Grid;
use mwsj_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The broken strategy: split every relation, join locally, dedup globally.
fn split_only_join(query: &Query, relations: &[&[Rect]], grid: &Grid) -> Vec<Vec<u32>> {
    let n = query.num_relations();
    let mut out = Vec::new();
    for cell in grid.cells() {
        let local_rels: Vec<Vec<LocalRect>> = (0..n)
            .map(|pos| {
                relations[pos]
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| grid.split_cells(r).contains(&cell))
                    .map(|(id, r)| (*r, id as u32))
                    .collect()
            })
            .collect();
        local::multiway::multiway_join(query, &local_rels, |tuple| {
            out.push(tuple.iter().map(|&(_, id)| id).collect());
        });
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn figure3_tuple_is_lost_by_split_only() {
    // The Figure 3 geometry (see tests/paper_examples.rs): u1 is received
    // only by reducer 18, v1 by 10 and 18, w1 by 2/3/10/11, x1 by 3/11 —
    // no reducer receives all four, so the tuple cannot be computed.
    let grid = Grid::new((0.0, 80.0), (0.0, 40.0), 8, 4);
    let u1 = Rect::new(15.0, 15.0, 4.0, 4.0);
    let v1 = Rect::new(14.0, 25.0, 5.0, 12.0);
    let w1 = Rect::new(16.0, 36.0, 8.0, 14.0);
    let x1 = Rect::new(23.0, 34.0, 3.0, 8.0);
    let q = Query::parse("R1 ov R2 and R2 ov R3 and R3 ov R4").unwrap();
    let rels: [&[Rect]; 4] = [&[u1], &[v1], &[w1], &[x1]];

    let expected = reference::in_memory_join(&q, &rels);
    assert_eq!(expected, vec![vec![0, 0, 0, 0]], "the tuple exists");
    let got = split_only_join(&q, &rels, &grid);
    assert!(got.is_empty(), "split-only must lose the Figure 3 tuple");
}

#[test]
fn split_only_is_complete_for_two_way_joins() {
    // §5.2: for 2-way overlap joins splitting both sides IS correct — two
    // overlapping rectangles always share a cell.
    let mut rng = StdRng::seed_from_u64(3);
    let gen = |rng: &mut StdRng| -> Vec<Rect> {
        (0..200)
            .map(|_| {
                let x = rng.random_range(0.0..950.0);
                let y = rng.random_range(50.0..1000.0);
                Rect::new(
                    x,
                    y,
                    rng.random_range(0.0..50.0),
                    rng.random_range(0.0..50.0),
                )
            })
            .collect()
    };
    let (a, b) = (gen(&mut rng), gen(&mut rng));
    let q = Query::parse("A ov B").unwrap();
    let grid = Grid::square((0.0, 1000.0), (0.0, 1000.0), 8);
    assert_eq!(
        split_only_join(&q, &[&a, &b], &grid),
        reference::in_memory_join(&q, &[&a, &b])
    );
}

#[test]
fn split_only_underreports_on_random_three_way_workloads() {
    // On dense random data, split-only finds a subset of the true result
    // and — with chains long relative to the cell size — strictly misses
    // tuples.
    let mut rng = StdRng::seed_from_u64(17);
    let gen = |rng: &mut StdRng| -> Vec<Rect> {
        (0..250)
            .map(|_| {
                let x = rng.random_range(0.0..900.0);
                let y = rng.random_range(100.0..1000.0);
                Rect::new(
                    x,
                    y,
                    rng.random_range(0.0..100.0),
                    rng.random_range(0.0..100.0),
                )
            })
            .collect()
    };
    let (a, b, c) = (gen(&mut rng), gen(&mut rng), gen(&mut rng));
    let q = Query::parse("A ov B and B ov C").unwrap();
    // Small cells relative to the rectangles make chains straddle cells.
    let grid = Grid::square((0.0, 1000.0), (0.0, 1000.0), 16);

    let expected = reference::in_memory_join(&q, &[&a, &b, &c]);
    let got = split_only_join(&q, &[&a, &b, &c], &grid);
    // Soundness: never invents tuples.
    for t in &got {
        assert!(expected.contains(t));
    }
    // Incompleteness: strictly misses some.
    assert!(
        got.len() < expected.len(),
        "split-only found {} of {} tuples — expected a strict loss",
        got.len(),
        expected.len()
    );
}

#[test]
fn tagged_rect_roundtrip() {
    // Exercise the public TaggedRect surface alongside this suite.
    let tr = TaggedRect::new(mwsj_query::RelationId(2), 9, Rect::new(1.0, 2.0, 3.0, 1.0));
    assert_eq!(tr.relation.index(), 2);
    assert_eq!(tr.id, 9);
    assert_eq!(tr.rect.l(), 3.0);
}
